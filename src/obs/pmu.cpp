#include "obs/pmu.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "support/str.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace lamb::obs {

namespace {

constexpr int kN = 5;  // cycles, instructions, llc_loads, llc_misses, stalled
constexpr int kCycles = 0;
constexpr int kInstructions = 1;
constexpr int kLlcLoads = 2;
constexpr int kLlcMisses = 3;
constexpr int kStalled = 4;

enum Mode : int {
  kUnprobed = 0,
  kHardware = 1,
  kVirtual = 2,
  kUnavailable = 3,
};

std::atomic<int> g_mode{kUnprobed};
/// Bumped by the test hooks; threads reopen their group when it moves.
std::atomic<std::uint64_t> g_generation{1};
std::atomic<std::uint64_t (*)()> g_virtual_fn{nullptr};
std::atomic<int> g_fail_errno{0};  ///< test hook: forced open failure
std::atomic<bool> g_has_llc{false};
std::atomic<bool> g_has_stalled{false};
std::atomic<bool> g_rdpmc{false};

std::mutex g_probe_mutex;
std::string& status_string() {
  // Leaked like the tracer singleton: read at scrape time, possibly past
  // static destruction.
  static std::string* s = new std::string("unprobed");
  return *s;
}

#if defined(__linux__)

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  const int forced = g_fail_errno.load(std::memory_order_relaxed);
  if (forced != 0) {
    errno = forced;
    return -1;
  }
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// Per-thread counter group. Owned (and torn down) by the thread itself;
/// a generation bump from a test hook makes the next use reopen.
struct ThreadPmu {
  std::uint64_t generation = 0;
  int fds[kN] = {-1, -1, -1, -1, -1};
  perf_event_mmap_page* pages[kN] = {};
  int slot[kN] = {-1, -1, -1, -1, -1};  ///< index in the group-read values
  int n_values = 0;
  bool ok = false;
  bool rdpmc_all = false;

  void close_all() {
    for (int i = 0; i < kN; ++i) {
      if (pages[i] != nullptr) {
        ::munmap(pages[i], static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)));
        pages[i] = nullptr;
      }
      if (fds[i] >= 0) {
        ::close(fds[i]);
        fds[i] = -1;
      }
      slot[i] = -1;
    }
    n_values = 0;
    ok = false;
    rdpmc_all = false;
  }
  ~ThreadPmu() { close_all(); }
};

thread_local ThreadPmu t_pmu;

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config,
                          bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  // exclude_kernel keeps the group openable under perf_event_paranoid <= 2
  // (the common default) without CAP_PERFMON; we attribute user-space
  // compute anyway.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = leader ? 1 : 0;  // members follow the leader's enable
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

int open_event(ThreadPmu& st, int which, std::uint32_t type,
               std::uint64_t config, int group_fd) {
  perf_event_attr attr = make_attr(type, config, group_fd == -1);
  const int fd = static_cast<int>(
      sys_perf_event_open(&attr, 0, -1, group_fd, 0));
  if (fd < 0) {
    return -1;
  }
  st.fds[which] = fd;
  st.slot[which] = st.n_values++;
  void* page = ::mmap(nullptr, static_cast<std::size_t>(
                                   ::sysconf(_SC_PAGESIZE)),
                      PROT_READ, MAP_SHARED, fd, 0);
  st.pages[which] =
      page == MAP_FAILED ? nullptr
                         : static_cast<perf_event_mmap_page*>(page);
  return fd;
}

constexpr std::uint64_t kLlcReadAccess =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
constexpr std::uint64_t kLlcReadMiss =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);

/// Open this thread's group. Cycles and instructions are mandatory (no
/// IPC, no PMU); the LLC pair and stalled-backend are best-effort.
bool open_thread(ThreadPmu& st, int& out_errno) {
  st.close_all();
  st.generation = g_generation.load(std::memory_order_acquire);
  const int leader = open_event(st, kCycles, PERF_TYPE_HARDWARE,
                                PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) {
    out_errno = errno;
    return false;
  }
  if (open_event(st, kInstructions, PERF_TYPE_HARDWARE,
                 PERF_COUNT_HW_INSTRUCTIONS, leader) < 0) {
    out_errno = errno;
    st.close_all();
    return false;
  }
  open_event(st, kLlcLoads, PERF_TYPE_HW_CACHE, kLlcReadAccess, leader);
  open_event(st, kLlcMisses, PERF_TYPE_HW_CACHE, kLlcReadMiss, leader);
  open_event(st, kStalled, PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_STALLED_CYCLES_BACKEND, leader);
  // The LLC pair only makes sense together (a miss count without the
  // access count cannot form a rate), and closing one member mid-group
  // would desync our slot numbering from the kernel's group read layout —
  // so reopen the whole group from scratch without the pair.
  if ((st.fds[kLlcLoads] < 0) != (st.fds[kLlcMisses] < 0)) {
    const bool keep_stalled = st.fds[kStalled] >= 0;
    st.close_all();
    st.generation = g_generation.load(std::memory_order_acquire);
    const int lead2 = open_event(st, kCycles, PERF_TYPE_HARDWARE,
                                 PERF_COUNT_HW_CPU_CYCLES, -1);
    if (lead2 < 0 ||
        open_event(st, kInstructions, PERF_TYPE_HARDWARE,
                   PERF_COUNT_HW_INSTRUCTIONS, lead2) < 0) {
      out_errno = errno;
      st.close_all();
      return false;
    }
    if (keep_stalled) {
      open_event(st, kStalled, PERF_TYPE_HARDWARE,
                 PERF_COUNT_HW_STALLED_CYCLES_BACKEND, lead2);
    }
  }
  st.rdpmc_all = true;
  for (int i = 0; i < kN; ++i) {
    if (st.fds[i] >= 0 &&
        (st.pages[i] == nullptr || st.pages[i]->cap_user_rdpmc == 0)) {
      st.rdpmc_all = false;
    }
  }
  ::ioctl(st.fds[kCycles], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(st.fds[kCycles], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  st.ok = true;
  return true;
}

inline void compiler_barrier() { asm volatile("" ::: "memory"); }

#if defined(__x86_64__)
/// Seqlock'd userspace counter read (perf_event_open(2) man-page
/// protocol). False when the event is not currently scheduled on this
/// CPU (idx == 0) — caller falls back to the syscall read.
bool rdpmc_read(const volatile perf_event_mmap_page* pc, std::uint64_t& out) {
  for (;;) {
    const std::uint32_t seq = pc->lock;
    compiler_barrier();
    const std::uint32_t idx = pc->index;
    const std::int64_t offset = pc->offset;
    const std::uint32_t width = pc->pmc_width;
    if (pc->cap_user_rdpmc == 0 || idx == 0) {
      return false;
    }
    std::int64_t pmc =
        static_cast<std::int64_t>(__builtin_ia32_rdpmc(idx - 1));
    pmc <<= 64 - width;
    pmc >>= 64 - width;  // sign-extend the counter's active width
    const std::uint64_t count = static_cast<std::uint64_t>(offset + pmc);
    compiler_barrier();
    if (pc->lock == seq) {
      out = count;
      return true;
    }
  }
}
#endif  // __x86_64__

bool read_hardware(detail::PmuCounts& out) {
  ThreadPmu& st = t_pmu;
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  if (!st.ok || st.generation != generation) {
    int err = 0;
    if (!open_thread(st, err)) {
      return false;  // e.g. fd exhaustion on this thread only
    }
  }
#if defined(__x86_64__)
  if (st.rdpmc_all) {
    detail::PmuCounts fast;  // enabled/running 0: raw, currently-scheduled
    bool all = true;
    for (int i = 0; i < kN && all; ++i) {
      if (st.fds[i] >= 0) {
        all = rdpmc_read(st.pages[i], fast.v[i]);
      }
    }
    if (all) {
      out = fast;
      return true;
    }
  }
#endif
  std::uint64_t buf[3 + kN] = {};
  const ssize_t n = ::read(st.fds[kCycles], buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
    return false;
  }
  out.enabled = buf[1];
  out.running = buf[2];
  for (int i = 0; i < kN; ++i) {
    if (st.slot[i] >= 0) {
      out.v[i] = buf[3 + st.slot[i]];
    }
  }
  return true;
}

#endif  // __linux__

bool env_disabled() {
  const char* env = std::getenv("LAMB_PMU");
  if (env == nullptr) {
    return false;
  }
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "false") == 0;
}

int probe_locked() {
  if (g_virtual_fn.load(std::memory_order_relaxed) != nullptr) {
    status_string() = "virtual test counters installed";
    g_has_llc.store(true, std::memory_order_relaxed);
    g_has_stalled.store(true, std::memory_order_relaxed);
    return kVirtual;
  }
  if (env_disabled()) {
    status_string() = "disabled via LAMB_PMU=off";
    return kUnavailable;
  }
#if defined(__linux__)
  int err = 0;
  if (open_thread(t_pmu, err)) {
    g_has_llc.store(t_pmu.fds[kLlcLoads] >= 0, std::memory_order_relaxed);
    g_has_stalled.store(t_pmu.fds[kStalled] >= 0, std::memory_order_relaxed);
    g_rdpmc.store(t_pmu.rdpmc_all, std::memory_order_relaxed);
    status_string() = support::strf(
        "hardware counters active (%s read%s%s)",
        t_pmu.rdpmc_all ? "rdpmc" : "syscall",
        t_pmu.fds[kLlcLoads] >= 0 ? "" : ", no LLC events",
        t_pmu.fds[kStalled] >= 0 ? "" : ", no stalled-backend event");
    return kHardware;
  }
  status_string() = support::strf(
      "perf_event_open failed: %s (check /proc/sys/kernel/"
      "perf_event_paranoid, or set LAMB_PMU=off to silence)",
      std::strerror(err));
  return kUnavailable;
#else
  status_string() = "perf_event unavailable on this platform";
  return kUnavailable;
#endif
}

int probed_mode() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode != kUnprobed) {
    return mode;
  }
  const std::lock_guard<std::mutex> lock(g_probe_mutex);
  mode = g_mode.load(std::memory_order_relaxed);
  if (mode == kUnprobed) {
    mode = probe_locked();
    g_mode.store(mode, std::memory_order_release);
  }
  return mode;
}

bool read_counts(detail::PmuCounts& out) {
  const int mode = probed_mode();
  if (mode == kVirtual) {
    std::uint64_t (*fn)() = g_virtual_fn.load(std::memory_order_relaxed);
    if (fn == nullptr) {
      return false;
    }
    const std::uint64_t v = fn();
    for (int i = 0; i < kN; ++i) {
      out.v[i] = v;
    }
    out.enabled = 0;
    out.running = 0;
    return true;
  }
#if defined(__linux__)
  if (mode == kHardware) {
    return read_hardware(out);
  }
#endif
  return false;
}

/// partial += (to - from), scaled by the group's enabled/running ratio
/// over the window (multiplexing insurance; the ratio is 1 when the group
/// was scheduled the whole time, and rdpmc reads carry 0/0 → raw).
void add_delta(PmuSample& into, const detail::PmuCounts& from,
               const detail::PmuCounts& to) {
  const std::uint64_t d_enabled = to.enabled - from.enabled;
  const std::uint64_t d_running = to.running - from.running;
  const double scale =
      (d_running != 0 && d_enabled != d_running)
          ? static_cast<double>(d_enabled) / static_cast<double>(d_running)
          : 1.0;
  const auto delta = [scale](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t raw = b >= a ? b - a : 0;
    return scale == 1.0
               ? raw
               : static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
  };
  into.cycles += delta(from.v[kCycles], to.v[kCycles]);
  into.instructions += delta(from.v[kInstructions], to.v[kInstructions]);
  into.llc_loads += delta(from.v[kLlcLoads], to.v[kLlcLoads]);
  into.llc_misses += delta(from.v[kLlcMisses], to.v[kLlcMisses]);
  into.stalled_backend += delta(from.v[kStalled], to.v[kStalled]);
}

/// Innermost armed scope on this thread (exclusive-attribution stack).
thread_local PmuScope* t_top = nullptr;

}  // namespace

bool pmu_available() {
  const int mode = probed_mode();
  return mode == kHardware || mode == kVirtual;
}

std::string pmu_status() {
  probed_mode();
  const std::lock_guard<std::mutex> lock(g_probe_mutex);
  return status_string();
}

bool pmu_has_llc() {
  probed_mode();
  return g_has_llc.load(std::memory_order_relaxed);
}

bool pmu_has_stalled() {
  probed_mode();
  return g_has_stalled.load(std::memory_order_relaxed);
}

void PmuScope::arm() {
  if (armed_ || !pmu_available()) {
    return;
  }
  detail::PmuCounts now;
  if (!read_counts(now)) {
    return;
  }
  armed_ = true;
  parent_ = t_top;
  if (parent_ != nullptr && parent_->armed_) {
    // Freeze the parent: everything up to now is the parent's own work.
    add_delta(parent_->partial_, parent_->mark_, now);
  }
  mark_ = now;
  t_top = this;
}

PmuSample PmuScope::finish() {
  if (!armed_) {
    return partial_;
  }
  armed_ = false;
  detail::PmuCounts now;
  const bool ok = read_counts(now);
  t_top = parent_;
  if (ok) {
    add_delta(partial_, mark_, now);
    partial_.valid = true;
    if (parent_ != nullptr && parent_->armed_) {
      parent_->mark_ = now;  // the parent's own work resumes here
    }
  }
  parent_ = nullptr;
  return partial_;
}

void pmu_reset_for_test() {
  const std::lock_guard<std::mutex> lock(g_probe_mutex);
  g_mode.store(kUnprobed, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  g_has_llc.store(false, std::memory_order_relaxed);
  g_has_stalled.store(false, std::memory_order_relaxed);
  g_rdpmc.store(false, std::memory_order_relaxed);
  status_string() = "unprobed";
}

void pmu_test_fail_open(int errno_value) {
  g_fail_errno.store(errno_value, std::memory_order_relaxed);
  pmu_reset_for_test();
}

void pmu_test_install_virtual(std::uint64_t (*fn)()) {
  g_virtual_fn.store(fn, std::memory_order_relaxed);
  pmu_reset_for_test();
}

}  // namespace lamb::obs
