// Online drift detection and atlas refresh.
//
// A selection atlas encodes the machine's timing surface as measured at
// build time — but machines move: noisy neighbors, thermal throttling,
// frequency scaling. A recommendation that was right at warm-up can be
// stale after hours of uptime. DriftMonitor closes that loop:
//
//   1. At start it establishes a BASELINE — a GriddedProfile of isolated
//      GEMM timings over a small size grid (or loads one persisted earlier
//      through store/profile_io, so drift is judged against the timings the
//      atlases were actually built with, across process restarts).
//   2. Periodically (a background thread, or check_once() for callers who
//      own the cadence) it re-measures a seeded random sample of grid nodes
//      and computes a robust drift score: the MEDIAN relative error of the
//      re-measured timings against the stored baseline. The median makes a
//      single noisy probe harmless — drift means the middle of the
//      distribution moved, not one outlier.
//   3. When the score crosses the threshold, every published atlas slice is
//      stale: the monitor rebuilds them all through
//      SelectionService::refresh_slices() (copy-on-write — readers never
//      see a stale-marked, unrefreshed slice; in-flight atlas_for()
//      pointers stay valid), then re-baselines on the machine's new
//      timings, so one real shift triggers exactly one refresh round.
//
// Every timing goes through a single measure hook, injectable for tests
// (shift the hook's output past the threshold and the whole pipeline —
// detection, refresh, counters — runs without touching real hardware).
// The monitor's counters surface on /metrics via SelectionRoutes::
// attach_drift (lamb_drift_* series).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "model/kernel_call.hpp"
#include "model/machine.hpp"
#include "model/perf_profile.hpp"
#include "serve/selection_service.hpp"
#include "support/rng.hpp"

namespace lamb::serve {

struct DriftConfig {
  /// Background check cadence (start()/stop() thread); check_once() callers
  /// may ignore it.
  double check_interval_seconds = 30.0;
  /// Grid nodes re-measured per check (sampled with the seeded rng).
  std::size_t probes = 12;
  /// Robust relative-error score at which the atlases are declared stale.
  double threshold = 0.15;
  std::uint64_t seed = 0x0D21F7;
  /// Per-axis GEMM probe sizes (m, n and k all draw from this list). Small
  /// by default: a check must cost milliseconds, not an atlas scan.
  std::vector<double> nodes = {32, 64, 128, 256};
  /// When set, the baseline profile is persisted here (framed, checksummed
  /// — store/profile_io) and reloaded on restart if it matches this machine
  /// and grid; drift is then measured against the original build-time
  /// timings, not a fresh warm-up.
  std::string baseline_path;
};

struct DriftStats {
  std::uint64_t checks = 0;           ///< check_once() completions
  std::uint64_t check_failures = 0;   ///< background checks that threw
  std::uint64_t probe_measurements = 0;
  std::uint64_t drift_detected = 0;   ///< checks whose score crossed threshold
  std::uint64_t refresh_rounds = 0;   ///< refresh rounds triggered
  std::uint64_t slices_refreshed = 0; ///< atlas slices rebuilt across rounds
  /// CPU cycles / instructions spent inside probe measurements, and cycles
  /// spent on refresh rounds (rebuild + re-baseline) — PMU-attributed via
  /// obs::PmuScope; all zero when the PMU is unavailable. These price the
  /// monitor itself: a refresh decision is annotated with what the
  /// evidence cost to gather.
  std::uint64_t probe_cycles = 0;
  std::uint64_t probe_instructions = 0;
  std::uint64_t refresh_cycles = 0;
  double last_score = 0.0;            ///< most recent robust drift score
  bool baseline_loaded = false;       ///< baseline came from baseline_path
  /// Seconds since the last completed refresh; -1 until the first one.
  double last_refresh_age_seconds = -1.0;
};

class DriftMonitor {
 public:
  /// Replaces MachineModel::time_call_isolated for every probe and baseline
  /// measurement. Tests inject timing shifts here.
  using MeasureFn = std::function<double(const model::KernelCall&)>;

  /// Service and machine must outlive the monitor. The baseline is NOT
  /// measured here — it is established lazily by the first check (or
  /// start()), after any test hook is in place.
  DriftMonitor(SelectionService& service, model::MachineModel& machine,
               DriftConfig config = {});
  ~DriftMonitor();  ///< stop()s the background thread if running

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  const DriftConfig& config() const { return config_; }

  /// Install the measurement hook (null restores the real machine). Must
  /// not race an in-flight check: set it before start() or after stop().
  void set_measure_hook(MeasureFn hook);

  /// Launch the periodic background checker; idempotent.
  void start();
  /// Stop and join the background checker; idempotent, safe if never
  /// started.
  void stop();
  bool running() const;

  /// One synchronous check: establish/refresh the baseline if needed,
  /// re-measure a probe sample, score it, and — when the score crosses the
  /// threshold — refresh every atlas slice and re-baseline. Returns true
  /// when drift was detected. Serialised against the background thread.
  bool check_once();

  DriftStats stats() const;

 private:
  double measure(const model::KernelCall& call);
  /// Measure the full probe grid into a fresh baseline profile.
  model::GriddedProfile measure_baseline();
  /// Load (if compatible) or measure-and-save the baseline. Caller holds
  /// check_mutex_.
  void ensure_baseline();
  void save_baseline(const model::GriddedProfile& profile) const;
  void background_loop();

  SelectionService& service_;
  model::MachineModel& machine_;
  DriftConfig config_;

  /// Serialises checks (background vs manual) and baseline management.
  mutable std::mutex check_mutex_;
  MeasureFn hook_;
  std::optional<model::GriddedProfile> baseline_;
  support::Rng rng_;

  mutable std::mutex stats_mutex_;
  DriftStats stats_;  ///< guarded by stats_mutex_, as is last_refresh_
  std::optional<std::chrono::steady_clock::time_point> last_refresh_;

  mutable std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_ = false;
};

}  // namespace lamb::serve
