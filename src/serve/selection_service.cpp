#include "serve/selection_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <new>
#include <optional>
#include <thread>
#include <utility>

#include "anomaly/classifier.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace lamb::serve {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool same_config(const anomaly::AtlasConfig& a, const anomaly::AtlasConfig& b) {
  return a.lo == b.lo && a.hi == b.hi && a.coarse_step == b.coarse_step &&
         a.time_score_threshold == b.time_score_threshold;
}

/// Shape checks shared by every entry point; the family is resolved by the
/// caller (so batch loops can memoise the registry lookup per name).
void validate_query(const Query& q, const expr::ExpressionFamily& family) {
  LAMB_CHECK(static_cast<int>(q.dims.size()) == family.dimension_count(),
             "query arity mismatch for family " + q.family);
  LAMB_CHECK(q.dim >= 0 && q.dim < family.dimension_count(),
             "query dimension out of range");
  for (int d : q.dims) {
    LAMB_CHECK(d >= 1, "query dimensions must be positive");
  }
}

/// Same atlas slice: same family, same scanned dimension, same base line
/// (all coordinates equal except the scanned one). Cheaper than comparing
/// canonical key strings — no allocation, and batches are typically sweeps
/// where consecutive queries share a slice.
bool same_slice(const Query& a, const Query& b) {
  if (a.dim != b.dim || a.dims.size() != b.dims.size()) {
    return false;
  }
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    if (d != static_cast<std::size_t>(a.dim) && a.dims[d] != b.dims[d]) {
      return false;
    }
  }
  return a.family == b.family;  // the costliest comparison goes last
}

Recommendation recommendation_from(const anomaly::AtlasInterval& interval) {
  Recommendation rec;
  rec.algorithm = interval.recommended;
  rec.flop_minimal = interval.flop_minimal;
  rec.flops_reliable = !interval.anomalous;
  rec.time_score = interval.worst_time_score;
  rec.source = Source::kAtlas;
  return rec;
}

constexpr std::uint32_t kNoGroup = ~std::uint32_t{0};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t SelectionService::SliceIdHash::operator()(const SliceId& id) const {
  std::uint64_t h = support::fnv1a64(id.family);
  h = support::fnv1a64(&id.dim, sizeof(id.dim), h);
  h = support::fnv1a64(id.base.data(), id.base.size() * sizeof(int), h);
  return static_cast<std::size_t>(h);
}

SelectionService::SliceId SelectionService::slice_id(const Query& q) {
  SliceId id{q.family, q.dim, q.dims};
  id.base[static_cast<std::size_t>(q.dim)] = 0;
  return id;
}

SelectionService::SliceId SelectionService::slice_id(
    const store::AtlasKey& key) {
  SliceId id{key.family, key.dim, key.base};
  // Store keys may carry any value at the scanned coordinate (canonical()
  // zeroes it only when printing); normalise here.
  id.base[static_cast<std::size_t>(key.dim)] = 0;
  return id;
}

std::size_t QueryHash::operator()(const Query& q) const {
  std::uint64_t h = support::fnv1a64(q.family);
  h = support::fnv1a64(q.dims.data(), q.dims.size() * sizeof(int), h);
  const int tail[2] = {q.dim, q.exact ? 1 : 0};
  h = support::fnv1a64(tail, sizeof(tail), h);
  return static_cast<std::size_t>(h);
}

std::string_view to_string(Source source) {
  switch (source) {
    case Source::kCache:
      return "cache";
    case Source::kAtlas:
      return "atlas";
    case Source::kMeasured:
      return "measured";
    case Source::kFallback:
      return "fallback";
  }
  return "?";
}

SelectionService::SelectionService(model::MachineModel& machine,
                                   ServiceConfig config,
                                   const expr::FamilyRegistry* registry)
    : machine_(machine), config_(config),
      registry_(registry != nullptr ? *registry : expr::registry()),
      snapshot_(std::make_shared<const Snapshot>()),
      concurrent_timing_(machine.concurrent_timing_safe()),
      cache_(config.cache_capacity, config.cache_shards) {
  // The pool only ever runs atlas builds, and those are serialised behind
  // timing_mutex_ on machines whose timing is not thread-safe — don't park
  // idle workers in that case.
  if (concurrent_timing_) {
    pool_ = std::make_unique<parallel::ThreadPool>(
        resolve_threads(config_.threads));
  }
}

SelectionService::~SelectionService() {
  {
    const std::lock_guard<std::mutex> lock(async_mutex_);
    async_stop_ = true;
  }
  async_cv_.notify_all();
  if (async_worker_.joinable()) {
    async_worker_.join();
  }
  // Fail anything that was still queued, instead of the anonymous
  // broken-promise error the promise destructor would produce.
  for (auto& [bucket_key, bucket] : async_pending_) {
    for (AsyncWaiter& waiter : bucket.waiters) {
      waiter.promise.set_exception(std::make_exception_ptr(support::CheckError(
          "SelectionService destroyed with pending async queries")));
    }
  }
}

const expr::ExpressionFamily& SelectionService::resolve_family(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(families_mutex_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(name, registry_.make(name)).first;
  }
  return *it->second;
}

const expr::ExpressionFamily& SelectionService::family_for(const Query& q) {
  const expr::ExpressionFamily& family = resolve_family(q.family);
  validate_query(q, family);
  return family;
}

store::AtlasKey SelectionService::atlas_key(const Query& q) const {
  store::AtlasKey key;
  key.family = q.family;
  key.machine = machine_.name();
  key.dim = q.dim;
  key.base = q.dims;
  key.base[static_cast<std::size_t>(q.dim)] = 0;
  key.config = config_.atlas;
  return key;
}

SelectionService::AtlasPtr SelectionService::find_slice(const Snapshot& snap,
                                                        const SliceId& id) {
  const auto it = snap.slices.find(id);
  return it == snap.slices.end() ? nullptr : it->second.atlas;
}

SelectionService::AtlasPtr SelectionService::build_slice(
    const store::AtlasKey& key) {
  const obs::SpanScope build_span(obs::Stage::kBuild);
  if (const std::uint64_t ms =
          support::fault_value(support::FaultSite::kBuildDelayMs)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  if (support::fault_fire(support::FaultSite::kAllocBuild)) {
    throw std::bad_alloc();
  }
  if (support::fault_fire(support::FaultSite::kBuildSlice)) {
    throw std::runtime_error("fault injected: build.slice for " + key.family);
  }
  // The canonicalised base carries a 0 at the scanned coordinate, which
  // the scan overrides at every sample; only the family name is needed.
  const expr::ExpressionFamily& family = resolve_family(key.family);
  AtlasPtr built;
  if (concurrent_timing_) {
    built = std::make_shared<const anomaly::RegionAtlas>(
        family, machine_, key.base, key.dim, config_.atlas);
  } else {
    const std::lock_guard<std::mutex> timing_lock(timing_mutex_);
    built = std::make_shared<const anomaly::RegionAtlas>(
        family, machine_, key.base, key.dim, config_.atlas);
  }
  atlas_samples_.fetch_add(built->samples_used());
  atlases_built_.fetch_add(1);
  return built;
}

SelectionService::AtlasPtr SelectionService::publish(
    const store::AtlasKey& key, const SliceId& id, AtlasPtr atlas) {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  auto next = std::make_shared<Snapshot>(*snapshot_.load());
  const auto [it, inserted] =
      next->slices.try_emplace(id, Slice{key, std::move(atlas)});
  const AtlasPtr result = it->second.atlas;
  if (inserted) {
    snapshot_.store(std::move(next));
  }
  return result;
}

SelectionService::AtlasPtr SelectionService::obtain_atlas(
    const store::AtlasKey& key, const SliceId& id) {
  if (AtlasPtr atlas = find_slice(*snapshot(), id)) {
    return atlas;
  }
  const bool degrade = config_.degrade_on_failure;
  bool probe = false;
  if (degrade && config_.breaker_threshold > 0 && !breaker_admit(id, probe)) {
    return nullptr;  // breaker open: no build attempt, caller degrades
  }
  std::promise<AtlasPtr> promise;
  std::shared_future<AtlasPtr> shared;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(builds_mutex_);
    // Recheck under the lock: the builder publishes before it unregisters,
    // so a slice absent from both the snapshot and in_flight_ is truly ours
    // to build.
    if (AtlasPtr atlas = find_slice(*snapshot(), id)) {
      if (probe) {
        breaker_success(id);
      }
      return atlas;
    }
    const auto [it, inserted] = in_flight_.try_emplace(id);
    if (inserted) {
      it->second = promise.get_future().share();
      builder = true;
    }
    shared = it->second;
  }
  if (!builder) {
    if (probe) {
      // Another thread won the build; its outcome drives the breaker.
      breaker_probe_release(id);
    }
    if (degrade && config_.build_deadline_s > 0.0) {
      const auto deadline =
          std::chrono::duration<double>(config_.build_deadline_s);
      if (shared.wait_for(deadline) != std::future_status::ready) {
        // The build continues and publishes for later queries; this caller
        // answers from fallback now.
        return nullptr;
      }
    }
    if (!degrade) {
      return shared.get();  // blocks on the builder; rethrows its error
    }
    try {
      return shared.get();
    } catch (...) {
      return nullptr;  // the builder already recorded the breaker failure
    }
  }
  try {
    AtlasPtr result = publish(key, id, build_slice(key));
    promise.set_value(result);
    {
      const std::lock_guard<std::mutex> lock(builds_mutex_);
      in_flight_.erase(id);
    }
    if (degrade && config_.breaker_threshold > 0) {
      breaker_success(id);
    }
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      const std::lock_guard<std::mutex> lock(builds_mutex_);
      in_flight_.erase(id);
    }
    if (degrade) {
      if (config_.breaker_threshold > 0) {
        breaker_failure(id);
      }
      return nullptr;
    }
    throw;
  }
}

bool SelectionService::breaker_admit(const SliceId& id, bool& probe) {
  const std::lock_guard<std::mutex> lock(breakers_mutex_);
  const auto it = breakers_.find(id);
  if (it == breakers_.end() || it->second.open_until_ns == 0) {
    return true;  // closed (healthy, or still counting failures)
  }
  Breaker& b = it->second;
  if (steady_now_ns() < b.open_until_ns) {
    return false;  // open: backoff still running
  }
  if (b.probing) {
    return false;  // half-open: another caller already holds the probe
  }
  b.probing = true;
  probe = true;
  return true;
}

void SelectionService::breaker_success(const SliceId& id) {
  const std::lock_guard<std::mutex> lock(breakers_mutex_);
  breakers_.erase(id);  // full reset; healthy slices carry no breaker
}

void SelectionService::breaker_failure(const SliceId& id) {
  const std::lock_guard<std::mutex> lock(breakers_mutex_);
  Breaker& b = breakers_[id];
  b.probing = false;
  b.consecutive_failures += 1;
  const bool reopen = b.open_until_ns != 0;  // a failed half-open probe
  if (!reopen && b.consecutive_failures < config_.breaker_threshold) {
    return;
  }
  double backoff = config_.breaker_backoff_initial_s;
  for (int i = 0; i < b.open_count && backoff < config_.breaker_backoff_max_s;
       ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, config_.breaker_backoff_max_s);
  // Deterministic jitter in [1, 1.5): same slice + same open ordinal =>
  // same schedule in every run, but distinct slices never thunder together.
  const std::uint64_t h = support::mix64(
      SliceIdHash{}(id) ^ static_cast<std::uint64_t>(b.open_count));
  backoff *= 1.0 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  b.open_until_ns = steady_now_ns() +
                    static_cast<std::uint64_t>(backoff * 1e9);
  b.open_count += 1;
  breaker_opens_.fetch_add(1);
  std::fprintf(stderr,
               "breaker: slice %s:dim%d open (%d consecutive failures, "
               "retry in %.3fs)\n",
               id.family.c_str(), id.dim, b.consecutive_failures, backoff);
}

void SelectionService::breaker_probe_release(const SliceId& id) {
  const std::lock_guard<std::mutex> lock(breakers_mutex_);
  const auto it = breakers_.find(id);
  if (it != breakers_.end()) {
    it->second.probing = false;
  }
}

std::vector<BreakerSnapshot> SelectionService::breaker_states() const {
  const std::lock_guard<std::mutex> lock(breakers_mutex_);
  std::vector<BreakerSnapshot> out;
  out.reserve(breakers_.size());
  const std::uint64_t now = steady_now_ns();
  for (const auto& [id, b] : breakers_) {
    BreakerSnapshot snap;
    std::string base;
    for (std::size_t d = 0; d < id.base.size(); ++d) {
      base += support::strf("%s%d", d == 0 ? "" : ".", id.base[d]);
    }
    snap.slice = support::strf("%s:d%d:%s", id.family.c_str(), id.dim,
                               base.c_str());
    snap.state = b.open_until_ns == 0 ? 0.0
                 : now < b.open_until_ns ? 1.0
                                         : 0.5;
    snap.consecutive_failures = b.consecutive_failures;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const BreakerSnapshot& a, const BreakerSnapshot& b) {
              return a.slice < b.slice;
            });
  return out;
}

std::size_t SelectionService::async_queue_depth() const {
  const std::lock_guard<std::mutex> lock(async_mutex_);
  return async_order_.size();
}

Recommendation SelectionService::classify_exact(const Query& q) {
  const obs::SpanScope build_span(obs::Stage::kBuild);
  const expr::ExpressionFamily& family = family_for(q);
  anomaly::InstanceResult result = [&] {
    if (concurrent_timing_) {
      return anomaly::classify_instance(family, machine_, q.dims,
                                        config_.atlas.time_score_threshold);
    }
    const std::lock_guard<std::mutex> timing_lock(timing_mutex_);
    return anomaly::classify_instance(family, machine_, q.dims,
                                      config_.atlas.time_score_threshold);
  }();
  measured_queries_.fetch_add(1);
  Recommendation rec;
  rec.algorithm = result.fastest.front();
  rec.flop_minimal = result.cheapest.front();
  rec.flops_reliable = !result.anomaly;
  rec.time_score = result.time_score;
  rec.source = Source::kMeasured;
  return rec;
}

Recommendation SelectionService::fallback_answer(const Query& q) {
  // Pure cost-model arithmetic: no machine timing, no locks beyond the
  // family memo — this is the answer that is always available, whatever
  // state the measurement stack is in.
  const expr::ExpressionFamily& family = resolve_family(q.family);
  const std::vector<model::Algorithm> algorithms = family.algorithms(q.dims);
  std::size_t best = 0;
  for (std::size_t i = 1; i < algorithms.size(); ++i) {
    if (algorithms[i].flops() < algorithms[best].flops()) {
      best = i;  // strict <: ties keep the earliest, the canonical order
    }
  }
  Recommendation rec;
  rec.algorithm = best;
  rec.flop_minimal = best;
  rec.flops_reliable = true;
  rec.time_score = 0.0;
  rec.source = Source::kFallback;
  degraded_answers_.fetch_add(1);
  return rec;
}

Recommendation SelectionService::query(const Query& q) {
  {
    const obs::SpanScope lru_span(obs::Stage::kLru);
    if (auto hit = cache_.get(q)) {
      hit->source = Source::kCache;
      cache_answers_.fetch_add(1);
      return *hit;
    }
  }
  family_for(q);  // validate family, arity and dimension before working

  Recommendation rec;
  if (q.exact) {
    rec = classify_exact(q);
  } else {
    const obs::SpanScope atlas_span(obs::Stage::kAtlas);
    const SliceId id = slice_id(q);
    AtlasPtr atlas = find_slice(*snapshot(), id);
    if (atlas == nullptr && config_.auto_build) {
      atlas = obtain_atlas(atlas_key(q), id);
      if (atlas == nullptr) {
        // degrade_on_failure: the build failed, timed out or is breakered.
        // Never cached, so the next miss retries (or the breaker gates it).
        return fallback_answer(q);
      }
    }
    if (atlas != nullptr) {
      rec = recommendation_from(
          atlas->lookup(q.dims[static_cast<std::size_t>(q.dim)]));
      atlas_answers_.fetch_add(1);
    } else {
      rec = classify_exact(q);
    }
  }
  cache_.put(q, rec);
  return rec;
}

bool SelectionService::try_cached(const Query& q, Recommendation& out) {
  // Mirrors query()'s hit block exactly (same span, same counters) so a
  // caller probing here first observes identical payloads and metrics; the
  // Recommendation is a POD and ShardedLruCache::get allocates nothing, so
  // the whole probe is allocation-free.
  const obs::SpanScope lru_span(obs::Stage::kLru);
  if (auto hit = cache_.get(q)) {
    hit->source = Source::kCache;
    cache_answers_.fetch_add(1);
    out = *hit;
    return true;
  }
  return false;
}

std::vector<Recommendation> SelectionService::query_batch(
    std::span<const Query> batch) {
  std::vector<Recommendation> out(batch.size());
  if (batch.empty()) {
    return out;
  }
  LAMB_CHECK(batch.size() <= ~std::uint32_t{0},
             "query_batch: batch too large");  // indices are 32-bit
  batch_calls_.fetch_add(1);
  batch_queries_.fetch_add(batch.size());

  // With on-demand building off, a single query() may cache a measured
  // (classified) answer that a later atlas lookup would not reproduce;
  // strict bit-identity with sequential query() calls then requires the
  // cache to stay in the loop. Builds are disabled anyway, so there is
  // nothing for the batch path to group or amortise — delegate wholesale.
  if (!config_.auto_build) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = query(batch[i]);
    }
    return out;
  }

  // One atlas span covers the whole grouped answering (slice resolution,
  // deferred builds nest inside it as build spans, interval sweeps).
  const obs::SpanScope atlas_span(obs::Stage::kAtlas);

  struct Group {
    std::size_t rep;  ///< index of the group's first query
    AtlasPtr atlas;
    // Hoisted for the answer path: the interval partition, its range, and a
    // memo of the last interval hit — a sweep's next step (or a random
    // coordinate in a wide interval) is a two-comparison answer.
    const anomaly::AtlasInterval* intervals = nullptr;
    const anomaly::AtlasInterval* memo = nullptr;
    int lo = 0;
    int hi = 0;
  };
  std::vector<Group> groups;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> deferred;  // (query, group)
  std::vector<std::uint32_t> exact_queries;  // -> query() path, input order
  const SnapshotPtr snap = snapshot();  // one atomic load for the whole batch

  // Answer a query from its group's partition: clamp + scan of the ascending
  // contiguous intervals, bit-identical to RegionAtlas::lookup() (the same
  // clamp + partition point), but with no locks, hashing or function calls.
  const auto answer = [&](std::size_t i, Group& group) {
    const Query& q = batch[i];
    int c = q.dims[static_cast<std::size_t>(q.dim)];
    c = c < group.lo ? group.lo : (c > group.hi ? group.hi : c);
    const anomaly::AtlasInterval* interval = group.memo;
    if (interval == nullptr || c < interval->lo || c > interval->hi) {
      interval = group.intervals;
      while (interval->hi < c) {
        ++interval;
      }
      group.memo = interval;
    }
    out[i] = recommendation_from(*interval);
  };
  const auto adopt = [](Group& group, AtlasPtr atlas) {
    group.intervals = atlas->intervals().data();
    group.lo = atlas->config().lo;
    group.hi = atlas->config().hi;
    group.atlas = std::move(atlas);
  };

  // Pass 1 — validate, group by slice, and answer everything already
  // servable, in one sweep. Consecutive queries usually share a slice
  // (batches are sweeps), so the hot case is one slice comparison plus one
  // positivity check — the other coordinates were validated on the group's
  // representative, and same_slice pins them equal. Distinct slices per
  // batch are few, so the cold case is a linear group scan; brand-new
  // groups resolve their slice against the snapshot once. Queries whose
  // slice is not built yet are deferred.
  const expr::ExpressionFamily* family = nullptr;
  const std::string* family_name = nullptr;
  std::uint32_t last_group = kNoGroup;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Query& q = batch[i];
    std::uint32_t g;
    if (!q.exact && last_group != kNoGroup &&
        same_slice(q, batch[groups[last_group].rep])) {
      LAMB_CHECK(q.dims[static_cast<std::size_t>(q.dim)] >= 1,
                 "query dimensions must be positive");
      g = last_group;
    } else {
      if (family_name == nullptr || *family_name != q.family) {
        family = &resolve_family(q.family);
        family_name = &q.family;
      }
      validate_query(q, *family);
      if (q.exact) {
        exact_queries.push_back(static_cast<std::uint32_t>(i));
        continue;  // answered on the query() path below
      }
      g = kNoGroup;
      for (std::uint32_t k = 0; k < groups.size(); ++k) {
        if (same_slice(q, batch[groups[k].rep])) {
          g = k;
          break;
        }
      }
      if (g == kNoGroup) {
        Group group{i, nullptr, nullptr, nullptr, 0, 0};
        if (AtlasPtr atlas = find_slice(*snap, slice_id(q))) {
          adopt(group, std::move(atlas));
        }
        groups.push_back(std::move(group));
        g = static_cast<std::uint32_t>(groups.size() - 1);
      }
      last_group = g;
    }
    if (groups[g].intervals != nullptr) {
      answer(i, groups[g]);
    } else {
      deferred.emplace_back(static_cast<std::uint32_t>(i), g);
    }
  }

  // Pass 2 — build every missing slice exactly once (in parallel on the
  // pool when the machine's timing is thread-safe; a build failure
  // propagates, first error wins — or, with degrade_on_failure, degrades
  // just that group's queries to the fallback), then answer the deferred
  // queries.
  std::size_t degraded = 0;
  if (!deferred.empty()) {
    std::vector<std::pair<std::size_t, store::AtlasKey>> missing;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].atlas == nullptr) {
        missing.emplace_back(g, atlas_key(batch[groups[g].rep]));
      }
    }
    std::vector<AtlasPtr> built(missing.size());
    const auto build_one = [&](std::size_t m) {
      const store::AtlasKey& key = missing[m].second;
      built[m] = obtain_atlas(key, slice_id(key));
    };
    if (pool_ != nullptr && pool_->size() > 1 && missing.size() > 1) {
      // Pool workers have no trace context of their own; hand them ours so
      // their build spans land in this request's tree.
      const obs::TraceContext ctx = obs::current_context();
      pool_->parallel_for(static_cast<std::ptrdiff_t>(missing.size()),
                          [&, ctx](std::ptrdiff_t begin, std::ptrdiff_t end) {
                            const obs::ContextGuard guard(ctx);
                            for (std::ptrdiff_t m = begin; m < end; ++m) {
                              build_one(static_cast<std::size_t>(m));
                            }
                          });
    } else {
      for (std::size_t m = 0; m < missing.size(); ++m) {
        build_one(m);
      }
    }
    for (std::size_t m = 0; m < missing.size(); ++m) {
      if (built[m] != nullptr) {
        adopt(groups[missing[m].first], std::move(built[m]));
      }
    }
    for (const auto& [i, g] : deferred) {
      if (groups[g].intervals != nullptr) {
        answer(i, groups[g]);
      } else {
        // degrade_on_failure: the group's build degraded; its queries
        // answer from the analytical fallback instead of failing the batch.
        out[i] = fallback_answer(batch[i]);
        ++degraded;
      }
    }
  }

  // Pass 3 — exact queries take the ordinary query() path, in input order.
  for (const std::uint32_t i : exact_queries) {
    out[i] = query(batch[i]);
  }
  // Everything not on the exact or degraded path was answered from a
  // grouped slice.
  atlas_answers_.fetch_add(batch.size() - exact_queries.size() - degraded);
  return out;
}

std::future<Recommendation> SelectionService::query_async(Query q) {
  family_for(q);  // invalid queries throw here, synchronously, like query()
  async_calls_.fetch_add(1);
  std::promise<Recommendation> ready;
  {
    const obs::SpanScope lru_span(obs::Stage::kLru);
    if (auto hit = cache_.get(q)) {
      hit->source = Source::kCache;
      cache_answers_.fetch_add(1);
      ready.set_value(*hit);
      return ready.get_future();
    }
  }
  if (!q.exact) {
    SliceId id = slice_id(q);
    {
      // The span covers the synchronous lookup only. The enqueue below must
      // happen OUTSIDE it so the waiter's captured context stays parented
      // at the request root: the worker answers long after this scope's
      // interval closed, and spans must nest inside their parent's.
      const obs::SpanScope atlas_span(obs::Stage::kAtlas);
      if (AtlasPtr atlas = find_slice(*snapshot(), id)) {
        const Recommendation rec = recommendation_from(
            atlas->lookup(q.dims[static_cast<std::size_t>(q.dim)]));
        atlas_answers_.fetch_add(1);
        cache_.put(q, rec);
        ready.set_value(rec);
        return ready.get_future();
      }
    }
    store::AtlasKey key = atlas_key(q);  // before q is moved from
    return enqueue_async(std::move(id), std::move(key), false, std::move(q));
  }
  // Exact queries dedup by their own identity (dim -1 marks the bucket as
  // exact-shaped); the bucket only batches waiters, the worker still
  // answers each waiter individually.
  SliceId bucket_id{q.family, -1, q.dims};
  return enqueue_async(std::move(bucket_id), store::AtlasKey{}, true,
                       std::move(q));
}

std::future<Recommendation> SelectionService::enqueue_async(
    SliceId bucket_id, store::AtlasKey key, bool exact, Query q) {
  std::future<Recommendation> fut;
  {
    const std::lock_guard<std::mutex> lock(async_mutex_);
    LAMB_CHECK(!async_stop_, "query_async on a stopping service");
    if (!async_worker_.joinable()) {
      async_worker_ = std::thread([this] { async_worker_loop(); });
    }
    // Bounded queue: a brand-new bucket past the bound sheds to the
    // analytical fallback instead of growing the backlog without limit.
    // Waiters joining an already-queued bucket always join — they add no
    // build work.
    if (config_.degrade_on_failure && config_.max_build_queue > 0 &&
        async_order_.size() >= config_.max_build_queue &&
        async_pending_.find(bucket_id) == async_pending_.end()) {
      builds_shed_.fetch_add(1);
      std::promise<Recommendation> shed;
      fut = shed.get_future();
      shed.set_value(fallback_answer(q));
      return fut;
    }
    const auto [it, inserted] = async_pending_.try_emplace(bucket_id);
    if (inserted) {
      it->second.key = std::move(key);
      it->second.exact = exact;
      async_order_.push_back(std::move(bucket_id));
    }
    it->second.waiters.push_back(
        AsyncWaiter{std::move(q), {}, obs::current_context()});
    fut = it->second.waiters.back().promise.get_future();
  }
  async_cv_.notify_one();
  return fut;
}

void SelectionService::async_worker_loop() {
  for (;;) {
    AsyncBucket bucket;
    {
      std::unique_lock<std::mutex> lock(async_mutex_);
      async_cv_.wait(lock,
                     [&] { return async_stop_ || !async_order_.empty(); });
      if (async_stop_) {
        return;  // the destructor fails whatever is still queued
      }
      const SliceId bucket_id = std::move(async_order_.front());
      async_order_.pop_front();
      const auto it = async_pending_.find(bucket_id);
      bucket = std::move(it->second);
      async_pending_.erase(it);
    }
    if (!bucket.exact && config_.auto_build) {
      // One deduplicated build for every waiter on this slice; its spans
      // attach to the first waiter's request (the one that caused it).
      try {
        const obs::ContextGuard guard(bucket.waiters.front().ctx);
        const obs::SpanScope atlas_span(obs::Stage::kAtlas);
        obtain_atlas(bucket.key, slice_id(bucket.key));
      } catch (...) {
        const std::exception_ptr error = std::current_exception();
        for (AsyncWaiter& waiter : bucket.waiters) {
          waiter.promise.set_exception(error);
        }
        continue;
      }
    }
    for (AsyncWaiter& waiter : bucket.waiters) {
      try {
        const obs::ContextGuard guard(waiter.ctx);
        waiter.promise.set_value(query(waiter.query));
      } catch (...) {
        waiter.promise.set_exception(std::current_exception());
      }
    }
  }
}

std::size_t SelectionService::warm(std::span<const Query> batch) {
  // Distinct slices missing from the current snapshot, in first-appearance
  // order. obtain_atlas() rechecks and deduplicates against concurrent
  // builders, so a stale snapshot only costs a redundant queue entry.
  std::vector<std::pair<store::AtlasKey, SliceId>> to_build;
  const SnapshotPtr snap = snapshot();
  for (const Query& q : batch) {
    if (q.exact) {
      continue;
    }
    family_for(q);
    SliceId id = slice_id(q);
    if (find_slice(*snap, id) != nullptr) {
      continue;
    }
    const auto dup = std::find_if(
        to_build.begin(), to_build.end(),
        [&](const auto& entry) { return entry.second == id; });
    if (dup == to_build.end()) {
      to_build.emplace_back(atlas_key(q), std::move(id));
    }
  }
  if (to_build.empty()) {
    return 0;
  }
  if (pool_ != nullptr && pool_->size() > 1 && to_build.size() > 1) {
    const obs::TraceContext ctx = obs::current_context();
    pool_->parallel_for(static_cast<std::ptrdiff_t>(to_build.size()),
                        [&, ctx](std::ptrdiff_t begin, std::ptrdiff_t end) {
                          const obs::ContextGuard guard(ctx);
                          for (std::ptrdiff_t i = begin; i < end; ++i) {
                            const auto& [key, id] =
                                to_build[static_cast<std::size_t>(i)];
                            obtain_atlas(key, id);
                          }
                        });
  } else {
    for (const auto& [key, id] : to_build) {
      obtain_atlas(key, id);
    }
  }
  return to_build.size();
}

std::size_t SelectionService::warm_from_store(
    const store::AtlasStore& atlas_store) {
  std::vector<std::pair<store::AtlasKey, AtlasPtr>> fresh;
  for (const std::string& path : atlas_store.list()) {
    std::optional<store::AtlasRecord> record;
    try {
      record.emplace(store::load_atlas(path));
    } catch (const store::SerialError& e) {
      // One corrupt, truncated or foreign file (a crash mid-write, a disk
      // error) must not abort warming the healthy rest of the store — and
      // must not be silently re-read forever: set it aside with a journal
      // line so fsck / operators can inspect it.
      try {
        store::quarantine_file(path, e.what());
        std::fprintf(stderr, "warm_from_store: quarantined %s: %s\n",
                     path.c_str(), e.what());
        atlases_quarantined_.fetch_add(1);
      } catch (const store::SerialError& rename_error) {
        std::fprintf(stderr, "warm_from_store: skipping %s: %s\n",
                     path.c_str(), rename_error.what());
        atlases_skipped_.fetch_add(1);
      }
      continue;
    }
    if (record->machine != machine_.name() ||
        !same_config(record->atlas.config(), config_.atlas)) {
      continue;  // built for another machine model or another scan geometry
    }
    store::AtlasKey key = store::AtlasKey::of(*record);  // before the move
    fresh.emplace_back(std::move(key),
                       std::make_shared<const anomaly::RegionAtlas>(
                           std::move(record->atlas)));
  }
  if (fresh.empty()) {
    return 0;
  }
  // One copy-on-write swap adopts everything; already-present slices win
  // (they may be referenced by outstanding atlas_for() pointers).
  std::size_t adopted = 0;
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  auto next = std::make_shared<Snapshot>(*snapshot_.load());
  for (auto& [key, atlas] : fresh) {
    const auto [it, inserted] =
        next->slices.try_emplace(slice_id(key), Slice{key, std::move(atlas)});
    if (inserted) {
      atlases_loaded_.fetch_add(1);
      ++adopted;
    }
  }
  if (adopted > 0) {
    snapshot_.store(std::move(next));
  }
  return adopted;
}

std::size_t SelectionService::checkpoint(store::AtlasStore& atlas_store) const {
  const SnapshotPtr snap = snapshot_.load();
  for (const auto& [id, slice] : snap->slices) {
    atlas_store.save(slice.key, *slice.atlas);
  }
  return snap->slices.size();
}

std::size_t SelectionService::refresh_slices() {
  // One refresh round at a time: a second caller rebuilds against the new
  // generation, never the same stale one twice.
  const std::lock_guard<std::mutex> refresh_lock(refresh_mutex_);
  // The stale generation: everything published at this instant. Slices that
  // appear concurrently (on-demand builds) were scanned against the
  // machine's current timings and are not stale.
  const SnapshotPtr stale = snapshot_.load();
  std::vector<const Slice*> slices;
  slices.reserve(stale->slices.size());
  for (const auto& [id, slice] : stale->slices) {
    slices.push_back(&slice);
  }
  if (slices.empty()) {
    refresh_rounds_.fetch_add(1);
    return 0;
  }

  // Rebuild every stale slice off to the side; queries keep answering from
  // the old generation the whole time. A build failure throws out of here
  // with the old generation fully intact.
  std::vector<AtlasPtr> rebuilt(slices.size());
  const auto build_one = [&](std::size_t i) {
    rebuilt[i] = build_slice(slices[i]->key);
  };
  if (pool_ != nullptr && pool_->size() > 1 && slices.size() > 1) {
    const obs::TraceContext ctx = obs::current_context();
    pool_->parallel_for(static_cast<std::ptrdiff_t>(slices.size()),
                        [&, ctx](std::ptrdiff_t begin, std::ptrdiff_t end) {
                          const obs::ContextGuard guard(ctx);
                          for (std::ptrdiff_t i = begin; i < end; ++i) {
                            build_one(static_cast<std::size_t>(i));
                          }
                        });
  } else {
    for (std::size_t i = 0; i < slices.size(); ++i) {
      build_one(i);
    }
  }

  // One copy-on-write swap replaces the whole stale set. The copy is taken
  // from the *current* snapshot, so slices published since the stale load
  // survive; replaced atlases are retired, never freed, keeping
  // atlas_for() raw pointers valid.
  {
    const std::lock_guard<std::mutex> lock(publish_mutex_);
    auto next = std::make_shared<Snapshot>(*snapshot_.load());
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const auto it = next->slices.find(slice_id(slices[i]->key));
      retired_.push_back(std::move(it->second.atlas));
      it->second.atlas = std::move(rebuilt[i]);
    }
    snapshot_.store(std::move(next));
  }
  // Cached recommendations quote the stale generation; drop them after the
  // swap so every later answer re-reads the refreshed slices. (This resets
  // the LRU hit/miss pair; the monotonic per-source counters are
  // unaffected.)
  cache_.clear();
  slices_refreshed_.fetch_add(slices.size());
  refresh_rounds_.fetch_add(1);
  return slices.size();
}

const anomaly::RegionAtlas* SelectionService::atlas_for(const Query& q) {
  family_for(q);
  // Safe to return raw: published atlases are never dropped while the
  // service lives (snapshots only ever grow).
  return find_slice(*snapshot(), slice_id(q)).get();
}

std::size_t SelectionService::atlas_count() const {
  return snapshot_.load()->slices.size();
}

ServiceStats SelectionService::stats() const {
  ServiceStats s;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.atlases_built = atlases_built_.load();
  s.atlases_loaded = atlases_loaded_.load();
  s.atlases_skipped = atlases_skipped_.load();
  s.measured_queries = measured_queries_.load();
  s.atlas_samples = atlas_samples_.load();
  s.cache_answers = cache_answers_.load();
  s.atlas_answers = atlas_answers_.load();
  s.batch_calls = batch_calls_.load();
  s.batch_queries = batch_queries_.load();
  s.async_calls = async_calls_.load();
  s.slices_refreshed = slices_refreshed_.load();
  s.refresh_rounds = refresh_rounds_.load();
  s.degraded_answers = degraded_answers_.load();
  s.builds_shed = builds_shed_.load();
  s.breaker_opens = breaker_opens_.load();
  s.atlases_quarantined = atlases_quarantined_.load();
  return s;
}

}  // namespace lamb::serve
