#include "serve/selection_service.hpp"

#include <thread>

#include "anomaly/classifier.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"

namespace lamb::serve {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool same_config(const anomaly::AtlasConfig& a, const anomaly::AtlasConfig& b) {
  return a.lo == b.lo && a.hi == b.hi && a.coarse_step == b.coarse_step &&
         a.time_score_threshold == b.time_score_threshold;
}

}  // namespace

std::size_t QueryHash::operator()(const Query& q) const {
  std::uint64_t h = support::fnv1a64(q.family);
  h = support::fnv1a64(q.dims.data(), q.dims.size() * sizeof(int), h);
  const int tail[2] = {q.dim, q.exact ? 1 : 0};
  h = support::fnv1a64(tail, sizeof(tail), h);
  return static_cast<std::size_t>(h);
}

std::string_view to_string(Source source) {
  switch (source) {
    case Source::kCache:
      return "cache";
    case Source::kAtlas:
      return "atlas";
    case Source::kMeasured:
      return "measured";
  }
  return "?";
}

SelectionService::SelectionService(model::MachineModel& machine,
                                   ServiceConfig config,
                                   const expr::FamilyRegistry* registry)
    : machine_(machine), config_(config),
      registry_(registry != nullptr ? *registry : expr::registry()),
      concurrent_timing_(machine.concurrent_timing_safe()),
      cache_(config.cache_capacity, config.cache_shards) {
  if (concurrent_timing_) {
    pool_ = std::make_unique<parallel::ThreadPool>(
        resolve_threads(config_.threads));
  }
}

const expr::ExpressionFamily& SelectionService::resolve_family(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(families_mutex_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(name, registry_.make(name)).first;
  }
  return *it->second;
}

const expr::ExpressionFamily& SelectionService::family_for(const Query& q) {
  const expr::ExpressionFamily& family = resolve_family(q.family);
  LAMB_CHECK(static_cast<int>(q.dims.size()) == family.dimension_count(),
             "query arity mismatch for family " + q.family);
  LAMB_CHECK(q.dim >= 0 && q.dim < family.dimension_count(),
             "query dimension out of range");
  for (int d : q.dims) {
    LAMB_CHECK(d >= 1, "query dimensions must be positive");
  }
  return family;
}

store::AtlasKey SelectionService::atlas_key(const Query& q) {
  store::AtlasKey key;
  key.family = q.family;
  key.machine = machine_.name();
  key.dim = q.dim;
  key.base = q.dims;
  key.base[static_cast<std::size_t>(q.dim)] = 0;
  key.config = config_.atlas;
  return key;
}

std::shared_ptr<SelectionService::AtlasEntry> SelectionService::entry_for(
    const store::AtlasKey& key) {
  const std::string canonical = key.canonical();
  const std::lock_guard<std::mutex> lock(atlases_mutex_);
  auto it = atlases_.find(canonical);
  if (it == atlases_.end()) {
    auto entry = std::make_shared<AtlasEntry>();
    entry->key = key;
    it = atlases_.emplace(canonical, std::move(entry)).first;
  }
  return it->second;
}

const anomaly::RegionAtlas& SelectionService::ensure_built(AtlasEntry& entry) {
  const std::lock_guard<std::mutex> lock(entry.build_mutex);
  if (entry.atlas == nullptr) {
    // The canonicalised base carries a 0 at the scanned coordinate, which
    // the scan overrides at every sample; only the family name is needed.
    const expr::ExpressionFamily& family = resolve_family(entry.key.family);
    std::unique_ptr<const anomaly::RegionAtlas> built;
    if (concurrent_timing_) {
      built = std::make_unique<anomaly::RegionAtlas>(
          family, machine_, entry.key.base, entry.key.dim, config_.atlas);
    } else {
      const std::lock_guard<std::mutex> timing_lock(timing_mutex_);
      built = std::make_unique<anomaly::RegionAtlas>(
          family, machine_, entry.key.base, entry.key.dim, config_.atlas);
    }
    atlas_samples_.fetch_add(built->samples_used());
    atlases_built_.fetch_add(1);
    entry.atlas = std::move(built);
  }
  return *entry.atlas;
}

Recommendation SelectionService::classify_exact(const Query& q) {
  const expr::ExpressionFamily& family = family_for(q);
  anomaly::InstanceResult result = [&] {
    if (concurrent_timing_) {
      return anomaly::classify_instance(family, machine_, q.dims,
                                        config_.atlas.time_score_threshold);
    }
    const std::lock_guard<std::mutex> timing_lock(timing_mutex_);
    return anomaly::classify_instance(family, machine_, q.dims,
                                      config_.atlas.time_score_threshold);
  }();
  measured_queries_.fetch_add(1);
  Recommendation rec;
  rec.algorithm = result.fastest.front();
  rec.flop_minimal = result.cheapest.front();
  rec.flops_reliable = !result.anomaly;
  rec.time_score = result.time_score;
  rec.source = Source::kMeasured;
  return rec;
}

Recommendation SelectionService::query(const Query& q) {
  if (auto hit = cache_.get(q)) {
    hit->source = Source::kCache;
    return *hit;
  }
  family_for(q);  // validate family, arity and dimension before working

  Recommendation rec;
  if (q.exact) {
    rec = classify_exact(q);
  } else {
    const std::shared_ptr<AtlasEntry> entry = entry_for(atlas_key(q));
    const anomaly::RegionAtlas* atlas = nullptr;
    {
      const std::lock_guard<std::mutex> lock(entry->build_mutex);
      atlas = entry->atlas.get();
    }
    if (atlas == nullptr && config_.auto_build) {
      atlas = &ensure_built(*entry);
    }
    if (atlas != nullptr) {
      const anomaly::AtlasInterval& interval =
          atlas->lookup(q.dims[static_cast<std::size_t>(q.dim)]);
      rec.algorithm = interval.recommended;
      rec.flop_minimal = interval.flop_minimal;
      rec.flops_reliable = !interval.anomalous;
      rec.time_score = interval.worst_time_score;
      rec.source = Source::kAtlas;
    } else {
      rec = classify_exact(q);
    }
  }
  cache_.put(q, rec);
  return rec;
}

std::vector<Recommendation> SelectionService::query_batch(
    const std::vector<Query>& batch) {
  warm(batch);  // dedupe + parallel-build the missing slices first
  std::vector<Recommendation> out;
  out.reserve(batch.size());
  for (const Query& q : batch) {
    out.push_back(query(q));
  }
  return out;
}

std::size_t SelectionService::warm(const std::vector<Query>& batch) {
  // Distinct unbuilt slices, in first-appearance order.
  std::vector<std::shared_ptr<AtlasEntry>> to_build;
  std::unordered_map<std::string, bool> seen;
  for (const Query& q : batch) {
    if (q.exact) {
      continue;
    }
    family_for(q);
    const store::AtlasKey key = atlas_key(q);
    if (!seen.emplace(key.canonical(), true).second) {
      continue;
    }
    const std::shared_ptr<AtlasEntry> entry = entry_for(key);
    const std::lock_guard<std::mutex> lock(entry->build_mutex);
    if (entry->atlas == nullptr) {
      to_build.push_back(entry);
    }
  }
  if (to_build.empty()) {
    return 0;
  }
  if (pool_ != nullptr && pool_->size() > 1 && to_build.size() > 1) {
    pool_->parallel_for(static_cast<std::ptrdiff_t>(to_build.size()),
                        [&](std::ptrdiff_t begin, std::ptrdiff_t end) {
                          for (std::ptrdiff_t i = begin; i < end; ++i) {
                            ensure_built(*to_build[static_cast<std::size_t>(i)]);
                          }
                        });
  } else {
    for (const auto& entry : to_build) {
      ensure_built(*entry);
    }
  }
  return to_build.size();
}

std::size_t SelectionService::warm_from_store(
    const store::AtlasStore& atlas_store) {
  std::size_t adopted = 0;
  for (const std::string& path : atlas_store.list()) {
    store::AtlasRecord record = store::load_atlas(path);
    if (record.machine != machine_.name() ||
        !same_config(record.atlas.config(), config_.atlas)) {
      continue;  // built for another machine model or another scan geometry
    }
    const std::shared_ptr<AtlasEntry> entry =
        entry_for(store::AtlasKey::of(record));
    const std::lock_guard<std::mutex> lock(entry->build_mutex);
    if (entry->atlas == nullptr) {
      entry->atlas = std::make_unique<const anomaly::RegionAtlas>(
          std::move(record.atlas));
      atlases_loaded_.fetch_add(1);
      ++adopted;
    }
  }
  return adopted;
}

std::size_t SelectionService::checkpoint(store::AtlasStore& atlas_store) const {
  std::vector<std::shared_ptr<AtlasEntry>> entries;
  {
    const std::lock_guard<std::mutex> lock(atlases_mutex_);
    entries.reserve(atlases_.size());
    for (const auto& [canonical, entry] : atlases_) {
      entries.push_back(entry);
    }
  }
  std::size_t written = 0;
  for (const auto& entry : entries) {
    const std::lock_guard<std::mutex> lock(entry->build_mutex);
    if (entry->atlas != nullptr) {
      atlas_store.save(entry->key, *entry->atlas);
      ++written;
    }
  }
  return written;
}

const anomaly::RegionAtlas* SelectionService::atlas_for(const Query& q) {
  family_for(q);
  const std::shared_ptr<AtlasEntry> entry = entry_for(atlas_key(q));
  const std::lock_guard<std::mutex> lock(entry->build_mutex);
  return entry->atlas.get();
}

std::size_t SelectionService::atlas_count() const {
  const std::lock_guard<std::mutex> lock(atlases_mutex_);
  std::size_t built = 0;
  for (const auto& [canonical, entry] : atlases_) {
    const std::lock_guard<std::mutex> entry_lock(entry->build_mutex);
    if (entry->atlas != nullptr) {
      ++built;
    }
  }
  return built;
}

ServiceStats SelectionService::stats() const {
  ServiceStats s;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.atlases_built = atlases_built_.load();
  s.atlases_loaded = atlases_loaded_.load();
  s.measured_queries = measured_queries_.load();
  s.atlas_samples = atlas_samples_.load();
  return s;
}

}  // namespace lamb::serve
