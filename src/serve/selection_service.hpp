// SelectionService: the online answer to "which algorithm should I run?".
//
// The paper's Sec. 5 proposal, productionised: all the expensive knowledge —
// where the FLOP discriminant fails, and what to run instead — is computed
// offline (RegionAtlas scans, persisted through store::AtlasStore) and
// amortised into microsecond lookups at query time. A query names a family
// (by registry name), a concrete instance, and the symbolic dimension of
// interest; the answer is the algorithm index to run, whether the FLOP
// count can be trusted there, and where the answer came from.
//
// The service generalises the one-dimensional RegionAtlas to N symbolic
// dimensions by slicing: an atlas is keyed by (family, machine, dim, base
// instance with the scanned coordinate canonicalised away), so every query
// along the same axis-aligned line shares one atlas, and any dimension of
// any instance can be served. Layers, fastest first:
//
//   1. a sharded LRU cache of final recommendations (mutex-striped,
//      capacity-bounded, safe for concurrent callers),
//   2. atlas slices — built on demand, batch-built on the ThreadPool when
//      the machine's timing is thread-safe, warmable from / checkpointable
//      to a store::AtlasStore directory,
//   3. direct classification ("measured") for exact queries and for misses
//      when on-demand building is disabled.
//
// Answers are bit-identical to what the underlying RegionAtlas / classifier
// would produce directly (tests/serve_test.cpp pins this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "anomaly/atlas.hpp"
#include "expr/registry.hpp"
#include "model/machine.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/shard_cache.hpp"
#include "store/atlas_store.hpp"

namespace lamb::serve {

struct Query {
  std::string family;    ///< registry name ("aatb", "chain4", ...)
  expr::Instance dims;   ///< concrete instance to select an algorithm for
  int dim = 0;           ///< symbolic dimension of the atlas slice
  bool exact = false;    ///< bypass the atlas: classify this very instance

  friend bool operator==(const Query&, const Query&) = default;
};

/// FNV-1a over the query's identity, allocation-free (queries are the
/// recommendation cache's keys; the hit path must not allocate).
struct QueryHash {
  std::size_t operator()(const Query& q) const;
};

enum class Source : std::uint8_t {
  kCache,     ///< sharded LRU hit
  kAtlas,     ///< atlas-slice interval lookup
  kMeasured,  ///< direct classification on the machine model
};

std::string_view to_string(Source source);

struct Recommendation {
  std::size_t algorithm = 0;     ///< index to run (fastest known)
  std::size_t flop_minimal = 0;  ///< what the FLOP discriminant would pick
  bool flops_reliable = true;    ///< FLOP-minimal is safe here
  double time_score = 0.0;       ///< severity at/around the instance
  Source source = Source::kMeasured;

  /// Equality over the selection payload; `source` is provenance, not part
  /// of the answer.
  friend bool operator==(const Recommendation& a, const Recommendation& b) {
    return a.algorithm == b.algorithm && a.flop_minimal == b.flop_minimal &&
           a.flops_reliable == b.flops_reliable &&
           a.time_score == b.time_score;
  }
};

struct ServiceConfig {
  /// Slice geometry + classification threshold shared by every atlas the
  /// service builds (part of the atlas identity, so stores segregate by it).
  anomaly::AtlasConfig atlas;
  std::size_t cache_capacity = 1u << 16;  ///< recommendations, all shards
  std::size_t cache_shards = 16;
  /// Workers for batch atlas builds; 0 = hardware threads. Parallel builds
  /// engage only when the machine's timing is thread-safe.
  std::size_t threads = 0;
  /// Build missing atlas slices on demand; when false, a miss falls back to
  /// direct classification (source kMeasured).
  bool auto_build = true;
};

struct ServiceStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t atlases_built = 0;
  std::uint64_t atlases_loaded = 0;     ///< warmed from a store
  std::uint64_t measured_queries = 0;
  long long atlas_samples = 0;          ///< classifications spent building
};

class SelectionService {
 public:
  /// The machine (and registry, defaulting to the process-wide one) must
  /// outlive the service.
  explicit SelectionService(model::MachineModel& machine,
                            ServiceConfig config = {},
                            const expr::FamilyRegistry* registry = nullptr);

  const ServiceConfig& config() const { return config_; }

  /// Answer one query. Safe for concurrent callers: the cache is sharded,
  /// atlas builds are deduplicated per slice, and machines whose timing is
  /// not thread-safe are serialised behind one timing mutex.
  Recommendation query(const Query& q);

  /// Answer a batch, results in input order. Missing atlas slices are first
  /// deduplicated and built concurrently on the ThreadPool (when the
  /// machine's timing is thread-safe); answers are bit-identical to issuing
  /// the queries one by one.
  std::vector<Recommendation> query_batch(const std::vector<Query>& batch);

  /// Build (or load) the atlas slices the queries would need, without
  /// producing recommendations. Returns the number of slices built.
  std::size_t warm(const std::vector<Query>& batch);

  /// Adopt every atlas in `atlas_store` built on this machine model with
  /// this service's AtlasConfig; returns the number adopted.
  std::size_t warm_from_store(const store::AtlasStore& atlas_store);

  /// Persist every built slice; returns the number written.
  std::size_t checkpoint(store::AtlasStore& atlas_store) const;

  /// The built slice for a query's (family, dim, base), if any.
  const anomaly::RegionAtlas* atlas_for(const Query& q);

  std::size_t atlas_count() const;
  std::size_t cache_size() const { return cache_.size(); }
  ServiceStats stats() const;

 private:
  struct AtlasEntry {
    store::AtlasKey key;
    std::mutex build_mutex;
    std::unique_ptr<const anomaly::RegionAtlas> atlas;  // set once, then const
  };

  /// Resolves a family by registry name (instantiated once, cached).
  const expr::ExpressionFamily& resolve_family(const std::string& name);
  /// Validates the query shape and resolves the family (cached per name).
  const expr::ExpressionFamily& family_for(const Query& q);
  store::AtlasKey atlas_key(const Query& q);
  /// The entry for a slice key, inserting an unbuilt one if new.
  std::shared_ptr<AtlasEntry> entry_for(const store::AtlasKey& key);
  /// Builds the entry's atlas if absent; returns it built.
  const anomaly::RegionAtlas& ensure_built(AtlasEntry& entry);
  Recommendation classify_exact(const Query& q);

  model::MachineModel& machine_;
  ServiceConfig config_;
  const expr::FamilyRegistry& registry_;
  std::unique_ptr<parallel::ThreadPool> pool_;

  std::mutex families_mutex_;
  std::unordered_map<std::string, std::unique_ptr<const expr::ExpressionFamily>>
      families_;

  mutable std::mutex atlases_mutex_;
  std::unordered_map<std::string, std::shared_ptr<AtlasEntry>> atlases_;

  /// Serialises machine access when timing is not thread-safe.
  std::mutex timing_mutex_;
  const bool concurrent_timing_;

  ShardedLruCache<Query, Recommendation, QueryHash> cache_;
  std::atomic<std::uint64_t> atlases_built_{0};
  std::atomic<std::uint64_t> atlases_loaded_{0};
  std::atomic<std::uint64_t> measured_queries_{0};
  std::atomic<long long> atlas_samples_{0};
};

}  // namespace lamb::serve
