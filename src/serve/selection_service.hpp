// SelectionService: the online answer to "which algorithm should I run?".
//
// The paper's Sec. 5 proposal, productionised: all the expensive knowledge —
// where the FLOP discriminant fails, and what to run instead — is computed
// offline (RegionAtlas scans, persisted through store::AtlasStore) and
// amortised into microsecond lookups at query time. A query names a family
// (by registry name), a concrete instance, and the symbolic dimension of
// interest; the answer is the algorithm index to run, whether the FLOP
// count can be trusted there, and where the answer came from.
//
// The service generalises the one-dimensional RegionAtlas to N symbolic
// dimensions by slicing: an atlas is keyed by (family, machine, dim, base
// instance with the scanned coordinate canonicalised away), so every query
// along the same axis-aligned line shares one atlas, and any dimension of
// any instance can be served. Layers, fastest first:
//
//   1. a sharded LRU cache of final recommendations (mutex-striped,
//      capacity-bounded, safe for concurrent callers),
//   2. atlas slices — immutable once built, published through atomically
//      swapped snapshots (see below), built on demand, batch-built on the
//      ThreadPool when the machine's timing is thread-safe, warmable from /
//      checkpointable to a store::AtlasStore directory,
//   3. direct classification ("measured") for exact queries and for misses
//      when on-demand building is disabled.
//
// Snapshot semantics: the slice map is an immutable std::shared_ptr-held
// value, replaced copy-on-write under a writer mutex and read with a single
// atomic shared_ptr load. A warm query therefore takes no lock other than
// its LRU shard; a reader may observe a snapshot one swap behind (and then
// simply builds or waits for the slice it needs — builds are deduplicated
// per slice), but never a torn or partially built one. Published atlases are
// never replaced or dropped while the service lives, so raw pointers
// returned by atlas_for() stay valid.
//
// Answers are bit-identical to what the underlying RegionAtlas / classifier
// would produce directly, from every entry point — query(), query_batch(),
// query_async() — (tests/serve_test.cpp pins this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "anomaly/atlas.hpp"
#include "expr/registry.hpp"
#include "model/machine.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/shard_cache.hpp"
#include "store/atlas_store.hpp"

namespace lamb::serve {

struct Query {
  std::string family;    ///< registry name ("aatb", "chain4", ...)
  expr::Instance dims;   ///< concrete instance to select an algorithm for
  int dim = 0;           ///< symbolic dimension of the atlas slice
  bool exact = false;    ///< bypass the atlas: classify this very instance

  friend bool operator==(const Query&, const Query&) = default;
};

/// FNV-1a over the query's identity, allocation-free (queries are the
/// recommendation cache's keys; the hit path must not allocate).
struct QueryHash {
  std::size_t operator()(const Query& q) const;
};

enum class Source : std::uint8_t {
  kCache,     ///< sharded LRU hit
  kAtlas,     ///< atlas-slice interval lookup
  kMeasured,  ///< direct classification on the machine model
  kFallback,  ///< degraded: analytical flop-minimal ranking, no timing
};

std::string_view to_string(Source source);

struct Recommendation {
  std::size_t algorithm = 0;     ///< index to run (fastest known)
  std::size_t flop_minimal = 0;  ///< what the FLOP discriminant would pick
  bool flops_reliable = true;    ///< FLOP-minimal is safe here
  double time_score = 0.0;       ///< severity at/around the instance
  Source source = Source::kMeasured;

  /// Equality over the selection payload; `source` is provenance, not part
  /// of the answer.
  friend bool operator==(const Recommendation& a, const Recommendation& b) {
    return a.algorithm == b.algorithm && a.flop_minimal == b.flop_minimal &&
           a.flops_reliable == b.flops_reliable &&
           a.time_score == b.time_score;
  }
};

struct ServiceConfig {
  /// Slice geometry + classification threshold shared by every atlas the
  /// service builds (part of the atlas identity, so stores segregate by it).
  anomaly::AtlasConfig atlas;
  std::size_t cache_capacity = 1u << 16;  ///< recommendations, all shards
  std::size_t cache_shards = 16;
  /// Workers for batch atlas builds and batch answering; 0 = hardware
  /// threads. Parallel builds engage only when the machine's timing is
  /// thread-safe.
  std::size_t threads = 0;
  /// Build missing atlas slices on demand; when false, a miss falls back to
  /// direct classification (source kMeasured).
  bool auto_build = true;
  /// Graceful degradation: when a slice build fails (or the breaker is open,
  /// or a deduplicated build exceeds build_deadline_s, or the async queue
  /// sheds), answer from the analytical flop-minimal ranking with
  /// source=kFallback instead of propagating the exception. Off by default:
  /// library callers keep exact error propagation; the serving binary turns
  /// it on. Fallback answers are never cached, so recovery is automatic.
  bool degrade_on_failure = false;
  /// Per-slice circuit breaker (active only with degrade_on_failure): this
  /// many consecutive build failures open the breaker, skipping further
  /// build attempts until an exponential backoff (with deterministic
  /// jitter) elapses; then one half-open probe build closes it on success
  /// or re-opens it with a doubled backoff. 0 disables the breaker.
  int breaker_threshold = 3;
  double breaker_backoff_initial_s = 0.5;
  double breaker_backoff_max_s = 30.0;
  /// With degrade_on_failure: bound on waiting for another thread's
  /// in-flight build of the same slice; past it the waiter answers from
  /// fallback while the build continues and publishes for later queries.
  /// 0 waits indefinitely.
  double build_deadline_s = 0.0;
  /// With degrade_on_failure: bound on distinct queued async build buckets;
  /// enqueues past it answer from fallback immediately instead of growing
  /// the queue without limit. 0 = unbounded.
  std::size_t max_build_queue = 0;
};

struct ServiceStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t atlases_built = 0;
  std::uint64_t atlases_loaded = 0;     ///< warmed from a store
  std::uint64_t atlases_skipped = 0;    ///< corrupt store files skipped
  std::uint64_t measured_queries = 0;   ///< answers classified directly
  long long atlas_samples = 0;          ///< classifications spent building
  // Monotonic per-source answer counters and per-entry-point call counts.
  // Unlike the LRU's hit/miss pair these are never reset by clear(), which
  // is what a scrape-based exporter (the HTTP /metrics endpoint) needs.
  std::uint64_t cache_answers = 0;  ///< answers served from the LRU
  std::uint64_t atlas_answers = 0;  ///< answers served from an atlas slice
  std::uint64_t batch_calls = 0;    ///< query_batch() invocations
  std::uint64_t batch_queries = 0;  ///< queries summed over those batches
  std::uint64_t async_calls = 0;    ///< query_async() invocations
  std::uint64_t slices_refreshed = 0;  ///< slices rebuilt by refresh_slices()
  std::uint64_t refresh_rounds = 0;    ///< refresh_slices() invocations
  std::uint64_t degraded_answers = 0;  ///< answers served with source=fallback
  std::uint64_t builds_shed = 0;       ///< async buckets shed by the queue bound
  std::uint64_t breaker_opens = 0;     ///< closed/half-open -> open transitions
  std::uint64_t atlases_quarantined = 0;  ///< corrupt store files set aside
};

/// One per-slice circuit breaker, for /metrics: state is 0 (closed but
/// recently failing), 0.5 (half-open: backoff elapsed, probe pending or in
/// flight) or 1 (open). Healthy slices carry no breaker and are not listed.
struct BreakerSnapshot {
  std::string slice;
  double state = 0.0;
  int consecutive_failures = 0;
};

class SelectionService {
 public:
  /// The machine (and registry, defaulting to the process-wide one) must
  /// outlive the service.
  explicit SelectionService(model::MachineModel& machine,
                            ServiceConfig config = {},
                            const expr::FamilyRegistry* registry = nullptr);
  /// Abandons queued async queries: their futures fail with CheckError.
  ~SelectionService();

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  const ServiceConfig& config() const { return config_; }

  /// Answer one query. Safe for concurrent callers: the cache is sharded,
  /// the slice map is read via an atomic snapshot load, atlas builds are
  /// deduplicated per slice, and machines whose timing is not thread-safe
  /// are serialised behind one timing mutex.
  Recommendation query(const Query& q);

  /// Answer a batch, results in input order. Queries are grouped by atlas
  /// slice, each missing slice is built exactly once (on the ThreadPool when
  /// the machine's timing is thread-safe), and grouped queries are answered
  /// straight from the slice snapshot — the per-query LRU is neither
  /// consulted nor populated for them, which is what makes a warm batch
  /// several times faster than repeated query() calls; with on-demand
  /// building on, the payloads are identical either way, since the LRU then
  /// only ever caches atlas answers for non-exact queries. Exact queries
  /// take the query() path; with auto_build off (where cached measured
  /// answers are possible) the whole batch does, preserving strict
  /// bit-identity with sequential query() calls in every configuration.
  /// A slice-build failure propagates to the caller (first error wins).
  std::vector<Recommendation> query_batch(std::span<const Query> batch);
  std::vector<Recommendation> query_batch(std::initializer_list<Query> batch) {
    return query_batch(std::span<const Query>(batch.begin(), batch.size()));
  }

  /// Allocation-free LRU probe: when the query is already cached, fill
  /// `out` (counted as a cache answer, exactly as query() would) and return
  /// true; otherwise leave `out` untouched and return false, with no
  /// side effects — the caller falls back to query()/query_async(). The
  /// serving warm path uses this so an LRU hit never allocates.
  bool try_cached(const Query& q, Recommendation& out);

  /// Answer one query without blocking on atlas scans. Cache hits and
  /// already-built slices resolve immediately; anything needing a scan (or
  /// an exact classification) is handed to a background worker through a
  /// deduplicating build queue — N pending queries on the same slice cost
  /// one build. Invalid queries throw synchronously; a failed build fails
  /// the future. Destroying the service fails still-queued futures.
  std::future<Recommendation> query_async(Query q);

  /// Build (or load) the atlas slices the queries would need, without
  /// producing recommendations. Returns the number of slices built.
  std::size_t warm(std::span<const Query> batch);
  std::size_t warm(std::initializer_list<Query> batch) {
    return warm(std::span<const Query>(batch.begin(), batch.size()));
  }

  /// Adopt every atlas in `atlas_store` built on this machine model with
  /// this service's AtlasConfig; returns the number adopted.
  std::size_t warm_from_store(const store::AtlasStore& atlas_store);

  /// Persist every built slice; returns the number written.
  std::size_t checkpoint(store::AtlasStore& atlas_store) const;

  /// Re-scan every published slice against the machine's *current* timings
  /// and swap the rebuilt set in with one copy-on-write publication — the
  /// drift monitor's answer to a machine whose timings have moved (see
  /// serve/drift.hpp). The stale slices are marked internally, rebuilt, and
  /// only then replaced in a single atomic snapshot store, so no published
  /// snapshot ever contains a stale-marked, unrefreshed slice: readers see
  /// either the complete old generation or the complete new one. Replaced
  /// atlases are retired, not freed — raw pointers from atlas_for() stay
  /// valid for the service's lifetime. The recommendation LRU is cleared
  /// after the swap (its entries quote the stale generation); slices
  /// published concurrently by on-demand builds are already fresh and are
  /// kept untouched. Rebuilds run on the ThreadPool when the machine's
  /// timing is thread-safe; a build failure propagates and leaves the old
  /// generation fully in place. Returns the number of slices rebuilt.
  std::size_t refresh_slices();

  /// The built slice for a query's (family, dim, base), if any. The pointer
  /// stays valid for the service's lifetime (slices are never dropped).
  const anomaly::RegionAtlas* atlas_for(const Query& q);

  std::size_t atlas_count() const;
  std::size_t cache_size() const { return cache_.size(); }
  ServiceStats stats() const;

  /// Current per-slice breakers (failing, half-open or open slices only).
  std::vector<BreakerSnapshot> breaker_states() const;

  /// Distinct build buckets queued behind query_async (an admission-control
  /// watermark input for the HTTP tier).
  std::size_t async_queue_depth() const;

 private:
  using AtlasPtr = std::shared_ptr<const anomaly::RegionAtlas>;

  /// In-memory slice identity: machine and scan config are fixed per
  /// service, so (family, dim, base line) is enough — and hashing it is a
  /// handful of FNV steps, where the store's canonical() string costs a
  /// dozen snprintf calls. Strings stay at the store boundary. An exact
  /// query's async bucket reuses this shape with dim = -1 and the full
  /// instance as base.
  struct SliceId {
    std::string family;
    int dim = 0;
    expr::Instance base;  ///< coordinate at `dim` zeroed

    friend bool operator==(const SliceId&, const SliceId&) = default;
  };
  struct SliceIdHash {
    std::size_t operator()(const SliceId& id) const;
  };
  static SliceId slice_id(const Query& q);
  static SliceId slice_id(const store::AtlasKey& key);

  struct Slice {
    store::AtlasKey key;
    AtlasPtr atlas;
  };
  /// Immutable once published; replaced whole via copy-on-write.
  struct Snapshot {
    std::unordered_map<SliceId, Slice, SliceIdHash> slices;
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  struct AsyncWaiter {
    Query query;
    std::promise<Recommendation> promise;
    /// The enqueuer's trace context: the worker answers under it so the
    /// waiter's spans attach to the originating request's tree.
    obs::TraceContext ctx;
  };
  /// One queued unit of background work: all waiters for one slice (or one
  /// exact-classification bucket).
  struct AsyncBucket {
    store::AtlasKey key;
    bool exact = false;
    std::vector<AsyncWaiter> waiters;
  };

  /// Resolves a family by registry name (instantiated once, cached).
  const expr::ExpressionFamily& resolve_family(const std::string& name);
  /// Validates the query shape and resolves the family (cached per name).
  const expr::ExpressionFamily& family_for(const Query& q);
  store::AtlasKey atlas_key(const Query& q) const;

  SnapshotPtr snapshot() const { return snapshot_.load(); }
  /// The published atlas for a slice, or null.
  static AtlasPtr find_slice(const Snapshot& snap, const SliceId& id);
  /// The slice's atlas: published, in-flight (waits for the builder), or
  /// built here and published. Throws what the build threw — unless
  /// degrade_on_failure is set, in which case a failed build, an open
  /// breaker or an expired build deadline return nullptr and the caller
  /// answers from fallback_answer().
  AtlasPtr obtain_atlas(const store::AtlasKey& key, const SliceId& id);
  /// Scans the slice (serialised behind timing_mutex_ when the machine's
  /// timing is not thread-safe).
  AtlasPtr build_slice(const store::AtlasKey& key);
  /// Copy-on-write insert + atomic swap; first publication of a key wins.
  AtlasPtr publish(const store::AtlasKey& key, const SliceId& id,
                   AtlasPtr atlas);

  Recommendation classify_exact(const Query& q);

  /// The degraded answer: the analytical flop-minimal algorithm, no timing
  /// involved (the paper's premise — a cheap cost-model answer always
  /// exists). Counted in degraded_answers; never cached.
  Recommendation fallback_answer(const Query& q);

  /// Breaker gate before a build attempt. True admits the caller (sets
  /// `probe` when this is the half-open probe); false means answer from
  /// fallback without touching the machine.
  bool breaker_admit(const SliceId& id, bool& probe);
  void breaker_success(const SliceId& id);
  void breaker_failure(const SliceId& id);
  /// Clears the half-open probing claim when an admitted prober ended up
  /// waiting on another thread's build instead of building itself.
  void breaker_probe_release(const SliceId& id);

  std::future<Recommendation> enqueue_async(SliceId bucket_id,
                                            store::AtlasKey key, bool exact,
                                            Query q);
  void async_worker_loop();

  model::MachineModel& machine_;
  ServiceConfig config_;
  const expr::FamilyRegistry& registry_;
  std::unique_ptr<parallel::ThreadPool> pool_;

  std::mutex families_mutex_;
  std::unordered_map<std::string, std::unique_ptr<const expr::ExpressionFamily>>
      families_;

  /// The warm read path: one atomic load, no mutex.
  std::atomic<SnapshotPtr> snapshot_;
  /// Serialises copy-on-write snapshot swaps (writers only).
  mutable std::mutex publish_mutex_;
  /// Atlases replaced by refresh_slices(), kept so atlas_for() pointers
  /// stay valid for the service's lifetime (guarded by publish_mutex_).
  std::vector<AtlasPtr> retired_;
  /// Serialises whole-generation refreshes (each stale slice is rebuilt
  /// exactly once per refresh round).
  std::mutex refresh_mutex_;
  /// Deduplicates concurrent builds of the same slice: the first caller
  /// registers a future, everyone else waits on it.
  std::mutex builds_mutex_;
  std::unordered_map<SliceId, std::shared_future<AtlasPtr>, SliceIdHash>
      in_flight_;

  /// Per-slice circuit breakers (degrade_on_failure only). An entry exists
  /// only while a slice is failing; success erases it.
  struct Breaker {
    int consecutive_failures = 0;
    int open_count = 0;             ///< consecutive opens, drives the backoff
    std::uint64_t open_until_ns = 0;  ///< 0 = closed (counting failures)
    bool probing = false;           ///< half-open probe build in flight
  };
  mutable std::mutex breakers_mutex_;
  std::unordered_map<SliceId, Breaker, SliceIdHash> breakers_;

  /// Background build queue for query_async (worker started lazily).
  mutable std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::deque<SliceId> async_order_;  // FIFO of bucket ids
  std::unordered_map<SliceId, AsyncBucket, SliceIdHash> async_pending_;
  std::thread async_worker_;
  bool async_stop_ = false;

  /// Serialises machine access when timing is not thread-safe.
  std::mutex timing_mutex_;
  const bool concurrent_timing_;

  ShardedLruCache<Query, Recommendation, QueryHash> cache_;
  std::atomic<std::uint64_t> atlases_built_{0};
  std::atomic<std::uint64_t> atlases_loaded_{0};
  std::atomic<std::uint64_t> atlases_skipped_{0};
  std::atomic<std::uint64_t> measured_queries_{0};
  std::atomic<long long> atlas_samples_{0};
  std::atomic<std::uint64_t> cache_answers_{0};
  std::atomic<std::uint64_t> atlas_answers_{0};
  std::atomic<std::uint64_t> batch_calls_{0};
  std::atomic<std::uint64_t> batch_queries_{0};
  std::atomic<std::uint64_t> async_calls_{0};
  std::atomic<std::uint64_t> slices_refreshed_{0};
  std::atomic<std::uint64_t> refresh_rounds_{0};
  std::atomic<std::uint64_t> degraded_answers_{0};
  std::atomic<std::uint64_t> builds_shed_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> atlases_quarantined_{0};
};

}  // namespace lamb::serve
