#include "serve/drift.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/pmu.hpp"
#include "store/profile_io.hpp"
#include "store/serial.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/statistics.hpp"

namespace lamb::serve {

namespace {

void validate(const DriftConfig& cfg) {
  LAMB_CHECK(cfg.probes >= 1, "drift: need at least one probe per check");
  LAMB_CHECK(cfg.threshold > 0.0, "drift: threshold must be positive");
  LAMB_CHECK(cfg.check_interval_seconds > 0.0,
             "drift: check interval must be positive");
  LAMB_CHECK(cfg.nodes.size() >= 2, "drift: need at least two grid nodes");
  for (double node : cfg.nodes) {
    LAMB_CHECK(node >= 1.0, "drift: grid nodes must be >= 1");
  }
}

model::KernelCall probe_call(const std::vector<double>& nodes,
                             const std::vector<std::size_t>& idx) {
  const auto sz = [&](std::size_t d) {
    return static_cast<la::index_t>(nodes[idx[d]]);
  };
  return model::make_gemm(sz(0), sz(1), sz(2));
}

}  // namespace

DriftMonitor::DriftMonitor(SelectionService& service,
                           model::MachineModel& machine, DriftConfig config)
    : service_(service), machine_(machine), config_(std::move(config)),
      rng_(config_.seed) {
  validate(config_);
}

DriftMonitor::~DriftMonitor() { stop(); }

void DriftMonitor::set_measure_hook(MeasureFn hook) {
  const std::lock_guard<std::mutex> lock(check_mutex_);
  hook_ = std::move(hook);
}

double DriftMonitor::measure(const model::KernelCall& call) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.probe_measurements;
  }
  if (support::fault_fire(support::FaultSite::kDriftProbe)) {
    throw std::runtime_error("fault injected: drift.probe");
  }
  return hook_ ? hook_(call) : machine_.time_call_isolated(call);
}

model::GriddedProfile DriftMonitor::measure_baseline() {
  const std::vector<double>& nodes = config_.nodes;
  return model::GriddedProfile(
      {nodes, nodes, nodes}, [&](const std::vector<double>& c) {
        return measure(model::make_gemm(static_cast<la::index_t>(c[0]),
                                        static_cast<la::index_t>(c[1]),
                                        static_cast<la::index_t>(c[2])));
      });
}

void DriftMonitor::save_baseline(const model::GriddedProfile& profile) const {
  if (config_.baseline_path.empty()) {
    return;
  }
  store::save_drift_baseline(config_.baseline_path,
                             {machine_.name(), profile});
}

void DriftMonitor::ensure_baseline() {
  if (baseline_.has_value()) {
    return;
  }
  if (!config_.baseline_path.empty() &&
      std::filesystem::exists(config_.baseline_path)) {
    try {
      store::BaselineRecord record =
          store::load_drift_baseline(config_.baseline_path);
      const std::vector<std::vector<double>> want{config_.nodes, config_.nodes,
                                                  config_.nodes};
      if (record.machine == machine_.name() &&
          record.profile.axes() == want) {
        baseline_.emplace(std::move(record.profile));
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.baseline_loaded = true;
        return;
      }
      // Another machine or another probe grid: re-measure below.
    } catch (const store::SerialError& e) {
      // A corrupt baseline must not take the monitor down — it just costs
      // a re-measure (and the rewrite replaces the bad file).
      std::fprintf(stderr, "drift: skipping baseline %s: %s\n",
                   config_.baseline_path.c_str(), e.what());
    }
  }
  baseline_.emplace(measure_baseline());
  save_baseline(*baseline_);
}

bool DriftMonitor::check_once() {
  const std::lock_guard<std::mutex> lock(check_mutex_);
  ensure_baseline();

  // Re-measure a seeded sample of grid nodes and score the drift as the
  // MEDIAN relative error against the stored baseline — robust: one noisy
  // probe cannot trigger a refresh, the middle of the distribution must
  // have moved. The whole probe pass runs under a PmuScope so the refresh
  // decision can be annotated with what the evidence cost to gather.
  obs::PmuScope probe_pmu(/*arm_now=*/true);
  const std::size_t per_axis = config_.nodes.size();
  std::vector<double> errors;
  errors.reserve(config_.probes);
  for (std::size_t p = 0; p < config_.probes; ++p) {
    std::vector<std::size_t> idx(3);
    for (std::size_t d = 0; d < 3; ++d) {
      idx[d] = static_cast<std::size_t>(rng_.bounded(per_axis));
    }
    const double expected = baseline_->node_value(idx);
    const double observed = measure(probe_call(config_.nodes, idx));
    if (expected > 0.0) {
      errors.push_back(std::fabs(observed - expected) / expected);
    }
  }
  const obs::PmuSample probe_cost = probe_pmu.finish();
  const double score =
      errors.empty() ? 0.0 : support::median(errors);
  const bool drifted = score > config_.threshold;
  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.checks;
    stats_.last_score = score;
    if (probe_cost.valid) {
      stats_.probe_cycles += probe_cost.cycles;
      stats_.probe_instructions += probe_cost.instructions;
    }
    if (drifted) {
      ++stats_.drift_detected;
    }
  }
  if (!drifted) {
    return false;
  }

  // The machine moved: every published slice is stale. Rebuild them all
  // (copy-on-write, one swap — see SelectionService::refresh_slices), then
  // adopt the machine's new timings as the baseline so one real shift
  // triggers exactly one refresh round instead of one per check forever.
  obs::PmuScope refresh_pmu(/*arm_now=*/true);
  const std::size_t refreshed = service_.refresh_slices();
  baseline_.emplace(measure_baseline());
  save_baseline(*baseline_);
  const obs::PmuSample refresh_cost = refresh_pmu.finish();
  if (probe_cost.valid || refresh_cost.valid) {
    std::fprintf(stderr,
                 "drift: refresh at score %.4f (%zu slices; probes %llu "
                 "cycles ipc %.2f, refresh %llu cycles)\n",
                 score, refreshed,
                 static_cast<unsigned long long>(probe_cost.cycles),
                 probe_cost.ipc(),
                 static_cast<unsigned long long>(refresh_cost.cycles));
  } else {
    std::fprintf(stderr, "drift: refresh at score %.4f (%zu slices)\n",
                 score, refreshed);
  }
  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.refresh_rounds;
    stats_.slices_refreshed += refreshed;
    if (refresh_cost.valid) {
      stats_.refresh_cycles += refresh_cost.cycles;
    }
    last_refresh_ = std::chrono::steady_clock::now();
  }
  return true;
}

void DriftMonitor::background_loop() {
  const auto base = std::chrono::duration<double>(
      config_.check_interval_seconds);
  // Consecutive failures (a dead probe path, a machine that throws on every
  // timing) back the cadence off exponentially, capped at 16x, instead of
  // hammering a broken measurement stack at full rate; one success snaps
  // back to the configured interval.
  int consecutive_failures = 0;
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_) {
    const auto interval =
        base * static_cast<double>(1 << std::min(consecutive_failures, 4));
    if (stop_cv_.wait_for(lock, interval, [&] { return stop_; })) {
      return;
    }
    lock.unlock();
    try {
      check_once();
      consecutive_failures = 0;
    } catch (const std::exception& e) {
      // A failed check (a refresh build error, a probe fault) must not kill
      // the monitor; the next tick retries against the same baseline.
      ++consecutive_failures;
      {
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.check_failures;
      }
      std::fprintf(stderr, "drift: check failed (%d in a row): %s\n",
                   consecutive_failures, e.what());
    }
    lock.lock();
  }
}

void DriftMonitor::start() {
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) {
    return;
  }
  stop_ = false;
  thread_ = std::thread([this] { background_loop(); });
}

void DriftMonitor::stop() {
  {
    const std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!thread_.joinable()) {
      return;
    }
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  thread_ = std::thread();
}

bool DriftMonitor::running() const {
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  return thread_.joinable() && !stop_;
}

DriftStats DriftMonitor::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  DriftStats s = stats_;
  if (last_refresh_.has_value()) {
    s.last_refresh_age_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      *last_refresh_)
            .count();
  }
  return s;
}

}  // namespace lamb::serve
