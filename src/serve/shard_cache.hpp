// Sharded LRU cache: N independent support::LruCache shards, each behind its
// own mutex, shard chosen by the key's hash. Concurrent callers on different
// shards never contend; capacity is split across shards (shard count is
// clamped down to the capacity when needed) with the remainder distributed
// one-per-shard, so the per-shard capacities sum to exactly the requested
// global bound. The hit path performs no allocations — keys are hashed and
// compared in place, which is what keeps a warm service query at nanoseconds
// (bench/bm_service_throughput.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "support/check.hpp"
#include "support/lru.hpp"

namespace lamb::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  ShardedLruCache(std::size_t capacity, std::size_t shard_count)
      : shards_() {
    LAMB_CHECK(shard_count >= 1, "cache needs at least one shard");
    if (capacity > 0) {
      shard_count = std::min(shard_count, capacity);
    }
    const std::size_t per_shard = capacity == 0 ? 0 : capacity / shard_count;
    const std::size_t remainder = capacity == 0 ? 0 : capacity % shard_count;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      // The first `remainder` shards take one extra slot, so the aggregate
      // bound is exactly `capacity` (10 over 4 shards = 3+3+2+2, not 4*2).
      shards_.push_back(std::make_unique<Shard>(per_shard +
                                                (i < remainder ? 1 : 0)));
    }
  }

  std::optional<Value> get(const Key& key) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.cache.get(key);
  }

  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.put(key, std::move(value));
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->cache.size();
    }
    return total;
  }

  /// Aggregate bound: the per-shard capacities sum to the requested one.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->cache.capacity();
    }
    return total;
  }

  std::uint64_t hits() const { return sum(&Shard::hits); }
  std::uint64_t misses() const { return sum(&Shard::misses); }

  /// Drops every entry and resets the hit/miss counters (mirrors
  /// support::LruCache::clear(), which the per-shard call performs).
  void clear() {
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->cache.clear();
    }
  }

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : cache(capacity) {}
    std::uint64_t hits() const { return cache.hits(); }
    std::uint64_t misses() const { return cache.misses(); }

    mutable std::mutex mutex;
    support::LruCache<Key, Value, Hash> cache;
  };

  Shard& shard_for(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  std::uint64_t sum(std::uint64_t (Shard::*counter)() const) const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      total += (*shard.*counter)();
    }
    return total;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lamb::serve
