#include "expr/expr.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"
#include "support/str.hpp"

namespace lamb::expr {

ExprPtr Expr::operand(std::string name, int rows_dim, int cols_dim) {
  LAMB_CHECK(!name.empty(), "operand needs a name");
  LAMB_CHECK(rows_dim >= 0 && cols_dim >= 0,
             "operand dimension indices must be non-negative");
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kOperand;
  node->name_ = std::move(name);
  node->rows_dim_ = rows_dim;
  node->cols_dim_ = cols_dim;
  return node;
}

ExprPtr Expr::transpose(ExprPtr inner) {
  LAMB_CHECK(inner != nullptr, "transpose of a null expression");
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kTranspose;
  node->lhs_ = std::move(inner);
  return node;
}

ExprPtr Expr::product(ExprPtr lhs, ExprPtr rhs) {
  LAMB_CHECK(lhs != nullptr && rhs != nullptr, "product of a null expression");
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kProduct;
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return node;
}

ExprPtr Expr::syrk(ExprPtr inner) {
  LAMB_CHECK(inner != nullptr, "syrk of a null expression");
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kSyrk;
  node->lhs_ = std::move(inner);
  return node;
}

std::string Expr::to_string() const {
  switch (kind_) {
    case Kind::kOperand:
      return name_;
    case Kind::kTranspose:
      if (lhs_->kind() == Kind::kOperand) {
        return lhs_->to_string() + "'";
      }
      return "(" + lhs_->to_string() + ")'";
    case Kind::kProduct:
      return lhs_->to_string() + "*" + rhs_->to_string();
    case Kind::kSyrk:
      return "syrk(" + lhs_->to_string() + ")";
  }
  return {};
}

ExprPtr operator*(const ExprPtr& lhs, const ExprPtr& rhs) {
  return Expr::product(lhs, rhs);
}

ExprPtr t(const ExprPtr& x) {
  return Expr::transpose(x);
}

int FlatProduct::dimension_count() const {
  int max_dim = -1;
  for (const ExternalSpec& e : externals) {
    max_dim = std::max({max_dim, e.rows_dim, e.cols_dim});
  }
  return max_dim + 1;
}

namespace {

/// Push transposes down to the leaves: (XY)' -> Y'X', X'' -> X. Appends the
/// resulting factors left to right.
void flatten_into(const ExprPtr& node, bool transposed, FlatProduct& out,
                  std::map<std::string, int>& index_by_name) {
  switch (node->kind()) {
    case Expr::Kind::kOperand: {
      const auto it = index_by_name.find(node->operand_name());
      int index;
      if (it == index_by_name.end()) {
        index = static_cast<int>(out.externals.size());
        out.externals.push_back(ExternalSpec{node->operand_name(),
                                             node->rows_dim(),
                                             node->cols_dim()});
        index_by_name.emplace(node->operand_name(), index);
      } else {
        index = it->second;
        const ExternalSpec& seen = out.externals[static_cast<std::size_t>(index)];
        LAMB_CHECK(seen.rows_dim == node->rows_dim() &&
                       seen.cols_dim == node->cols_dim(),
                   "operand " + node->operand_name() +
                       " appears with inconsistent shapes");
      }
      out.factors.push_back(Factor{index, transposed});
      return;
    }
    case Expr::Kind::kTranspose:
      flatten_into(node->lhs(), !transposed, out, index_by_name);
      return;
    case Expr::Kind::kProduct:
      if (transposed) {
        // (XY)' = Y'X'.
        flatten_into(node->rhs(), true, out, index_by_name);
        flatten_into(node->lhs(), true, out, index_by_name);
        return;
      }
      flatten_into(node->lhs(), false, out, index_by_name);
      flatten_into(node->rhs(), false, out, index_by_name);
      return;
    case Expr::Kind::kSyrk:
      // syrk(X) = X*X' regardless of an outer transpose ((XX')' = XX').
      flatten_into(node->lhs(), false, out, index_by_name);
      flatten_into(node->lhs(), true, out, index_by_name);
      return;
  }
}

}  // namespace

FlatProduct flatten(const ExprPtr& root) {
  LAMB_CHECK(root != nullptr, "cannot flatten a null expression");
  FlatProduct out;
  std::map<std::string, int> index_by_name;
  flatten_into(root, false, out, index_by_name);
  return out;
}

namespace {

/// First-choice-major decision sequences, as in chain::enumerate_chain_
/// schedules: each decision is the index of the adjacent pair to multiply.
void gen_decisions(int remaining, std::vector<int>& prefix,
                   std::vector<std::vector<int>>& out) {
  if (remaining == 1) {
    out.push_back(prefix);
    return;
  }
  for (int p = 0; p + 1 < remaining; ++p) {
    prefix.push_back(p);
    gen_decisions(remaining - 1, prefix, out);
    prefix.pop_back();
  }
}

/// How a symmetric temporary is to be consumed by the next product.
enum class ConsumeMode {
  kFull,       ///< physically full matrix, consume via GEMM
  kSymmLower,  ///< symmetric, consume via SYMM (reads the lower triangle)
};

/// A live entry of the shrinking factor list during lowering.
struct Item {
  int op_id = -1;               ///< operand id in the Algorithm under build
  bool trans = false;           ///< pending leaf transpose (externals only)
  ConsumeMode mode = ConsumeMode::kFull;
};

struct Lowering {
  const Instance* dims = nullptr;
  bool symmetric_rewrites = true;
  std::vector<model::Algorithm>* out = nullptr;

  la::index_t dim(int index) const {
    return static_cast<la::index_t>((*dims)[static_cast<std::size_t>(index)]);
  }

  /// True when items p, p+1 are the same untouched external as X * X'.
  bool is_symmetric_pair(const model::Algorithm& alg,
                         const std::vector<Item>& items, int p) const {
    if (!symmetric_rewrites) {
      return false;
    }
    const Item& l = items[static_cast<std::size_t>(p)];
    const Item& r = items[static_cast<std::size_t>(p) + 1];
    return l.op_id == r.op_id && !l.trans && r.trans &&
           alg.operands()[static_cast<std::size_t>(l.op_id)].external;
  }

  /// Emit the product of items p, p+1 as a plain GEMM/SYMM step; returns the
  /// produced item, or nullopt when the branch's consumption mode cannot be
  /// expressed by the kernel set (the branch is pruned).
  bool emit_plain(model::Algorithm& alg, std::vector<Item>& items, int p) const {
    const Item l = items[static_cast<std::size_t>(p)];
    const Item r = items[static_cast<std::size_t>(p) + 1];
    int produced;
    if (l.mode == ConsumeMode::kSymmLower) {
      // SYMM computes C := A_sym * B with a plain, untransposed B.
      if (r.trans || r.mode == ConsumeMode::kSymmLower ||
          alg.operands()[static_cast<std::size_t>(r.op_id)].lower_only) {
        return false;
      }
      produced = alg.add_symm(l.op_id, r.op_id);
    } else if (r.mode == ConsumeMode::kSymmLower) {
      // A symmetric temporary on the right has no SYMM lowering here (the
      // kernel set only supports the left side); this branch is covered by
      // the GEMM-consumption variant instead.
      return false;
    } else {
      produced = alg.add_gemm(l.op_id, r.op_id, l.trans, r.trans);
    }
    items[static_cast<std::size_t>(p)] =
        Item{produced, false, ConsumeMode::kFull};
    items.erase(items.begin() + p + 1);
    return true;
  }

  /// Depth-first expansion: apply decisions[index...], branching over kernel
  /// variants at every symmetric rank-k step.
  void expand(const std::vector<int>& decisions, std::size_t index,
              model::Algorithm alg, std::vector<Item> items) const {
    if (index == decisions.size()) {
      out->push_back(std::move(alg));
      return;
    }
    const int p = decisions[index];
    LAMB_CHECK(p >= 0 && p + 1 < static_cast<int>(items.size()),
               "invalid schedule decision");
    if (!is_symmetric_pair(alg, items, p)) {
      if (emit_plain(alg, items, p)) {
        expand(decisions, index + 1, std::move(alg), std::move(items));
      }
      return;
    }

    const int a = items[static_cast<std::size_t>(p)].op_id;
    const bool is_final = index + 1 == decisions.size();
    const auto branch = [&](auto&& produce, ConsumeMode mode) {
      model::Algorithm alg_copy = alg;
      std::vector<Item> items_copy = items;
      const int produced = produce(alg_copy);
      items_copy[static_cast<std::size_t>(p)] = Item{produced, false, mode};
      items_copy.erase(items_copy.begin() + p + 1);
      expand(decisions, index + 1, std::move(alg_copy), std::move(items_copy));
    };

    if (is_final) {
      // No consumer: SYRK needs a triangle copy to materialise the full
      // result; GEMM produces it directly.
      branch([&](model::Algorithm& a_) { return a_.add_tricopy(a_.add_syrk(a)); },
             ConsumeMode::kFull);
      branch([&](model::Algorithm& a_) { return a_.add_gemm(a, a, false, true); },
             ConsumeMode::kFull);
      return;
    }
    // The paper's variant order (Sec. 3.2.2): (SYRK, SYMM),
    // (SYRK+tricopy, GEMM), (GEMM, SYMM), (GEMM, GEMM).
    branch([&](model::Algorithm& a_) { return a_.add_syrk(a); },
           ConsumeMode::kSymmLower);
    branch([&](model::Algorithm& a_) { return a_.add_tricopy(a_.add_syrk(a)); },
           ConsumeMode::kFull);
    branch([&](model::Algorithm& a_) { return a_.add_gemm(a, a, false, true); },
           ConsumeMode::kSymmLower);
    branch([&](model::Algorithm& a_) { return a_.add_gemm(a, a, false, true); },
           ConsumeMode::kFull);
  }
};

}  // namespace

std::vector<model::Algorithm> enumerate_algorithms(
    const ExprPtr& root, const Instance& dims, const std::string& name_prefix,
    const EnumerationOptions& options) {
  const FlatProduct flat = flatten(root);
  const int n = static_cast<int>(flat.factors.size());
  LAMB_CHECK(n >= 2, "expression must be a product of at least two factors");
  LAMB_CHECK(static_cast<int>(dims.size()) >= flat.dimension_count(),
             "instance has fewer dimensions than the expression references");
  for (int d : dims) {
    LAMB_CHECK(d >= 1, "instance dimensions must be positive");
  }

  Lowering lowering;
  lowering.dims = &dims;
  lowering.symmetric_rewrites = options.symmetric_rewrites;

  // Conformance of the factor chain at this instance.
  const auto factor_rows = [&](const Factor& f) {
    const ExternalSpec& e = flat.externals[static_cast<std::size_t>(f.external)];
    return lowering.dim(f.trans ? e.cols_dim : e.rows_dim);
  };
  const auto factor_cols = [&](const Factor& f) {
    const ExternalSpec& e = flat.externals[static_cast<std::size_t>(f.external)];
    return lowering.dim(f.trans ? e.rows_dim : e.cols_dim);
  };
  for (int i = 0; i + 1 < n; ++i) {
    LAMB_CHECK(factor_cols(flat.factors[static_cast<std::size_t>(i)]) ==
                   factor_rows(flat.factors[static_cast<std::size_t>(i) + 1]),
               "expression factors do not conform at this instance");
  }

  std::vector<std::vector<int>> decisions;
  std::vector<int> prefix;
  gen_decisions(n, prefix, decisions);

  std::vector<model::Algorithm> out;
  lowering.out = &out;

  // Template algorithm: externals registered once, in first-appearance order.
  model::Algorithm proto;
  std::vector<int> external_ids;
  external_ids.reserve(flat.externals.size());
  for (const ExternalSpec& e : flat.externals) {
    external_ids.push_back(proto.add_external(lowering.dim(e.rows_dim),
                                              lowering.dim(e.cols_dim),
                                              e.name));
  }
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(n));
  for (const Factor& f : flat.factors) {
    items.push_back(Item{external_ids[static_cast<std::size_t>(f.external)],
                         f.trans, ConsumeMode::kFull});
  }

  for (const std::vector<int>& d : decisions) {
    lowering.expand(d, 0, proto, items);
  }
  LAMB_CHECK(!out.empty(), "enumeration produced no algorithms");
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].set_name(support::strf("%s%zu", name_prefix.c_str(), i + 1));
  }
  return out;
}

}  // namespace lamb::expr
