// Family registry: string-keyed factories for expression families, so
// benches, tests and CLI flags select families by name ("--family=aatb").
//
// Built-ins registered on first use:
//   chain3..chain6  — matrix chains (any other "chainN", N >= 2, is resolved
//                     dynamically by make())
//   aatb            — A*A'*B, the paper's Sec. 3.2.2 expression
//   gram            — A*A', the bare symmetric rank-k product
//   aatbc           — A*A'*B*C, a longer symmetric-headed chain
//
// Adding a family is one call:
//   registry().add("mine", "A'*(B*C)", [] {
//     return std::make_unique<DslFamily>("mine", <expression>);
//   });
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/family.hpp"

namespace lamb::expr {

class FamilyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ExpressionFamily>()>;

  /// Register a named factory; duplicate names are rejected.
  void add(const std::string& name, const std::string& description,
           Factory factory);

  bool contains(const std::string& name) const;

  /// Instantiate a registered family. Unregistered "chainN" names (N >= 2)
  /// are resolved to ChainFamily(N); any other unknown name throws
  /// support::CheckError listing the registered names.
  std::unique_ptr<ExpressionFamily> make(const std::string& name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  const std::string& description(const std::string& name) const;

  /// One-line-per-family listing for --help style output.
  std::string to_string() const;

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };
  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// The process-wide registry, with the built-in families pre-registered.
FamilyRegistry& registry();

/// Convenience: registry().make(name).
std::unique_ptr<ExpressionFamily> make_family(const std::string& name);

}  // namespace lamb::expr
