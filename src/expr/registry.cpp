#include "expr/registry.hpp"

#include "chain/chain.hpp"
#include "support/check.hpp"
#include "support/str.hpp"

namespace lamb::expr {

void FamilyRegistry::add(const std::string& name,
                         const std::string& description, Factory factory) {
  LAMB_CHECK(!name.empty(), "family name must not be empty");
  LAMB_CHECK(factory != nullptr, "family factory must not be null");
  LAMB_CHECK(find(name) == nullptr,
             "family '" + name + "' is already registered");
  entries_.push_back(Entry{name, description, std::move(factory)});
}

const FamilyRegistry::Entry* FamilyRegistry::find(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

bool FamilyRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

namespace {

/// Parse "chainN" -> N (or -1 when the name has another shape).
int parse_chain_length(const std::string& name) {
  constexpr std::string_view prefix = "chain";
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return -1;
  }
  int length = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9' || length > 100) {
      return -1;
    }
    length = length * 10 + (name[i] - '0');
  }
  return length;
}

}  // namespace

std::unique_ptr<ExpressionFamily> FamilyRegistry::make(
    const std::string& name) const {
  if (const Entry* e = find(name)) {
    std::unique_ptr<ExpressionFamily> family = e->factory();
    LAMB_CHECK(family != nullptr,
               "factory for family '" + name + "' returned null");
    return family;
  }
  const int chain_length = parse_chain_length(name);
  if (chain_length >= 2) {
    return std::make_unique<ChainFamily>(chain_length);
  }
  LAMB_CHECK(false, "unknown family '" + name + "'; registered: " +
                        support::join(names(), ", "));
  return nullptr;
}

std::vector<std::string> FamilyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(e.name);
  }
  return out;
}

const std::string& FamilyRegistry::description(const std::string& name) const {
  const Entry* e = find(name);
  LAMB_CHECK(e != nullptr, "unknown family '" + name + "'");
  return e->description;
}

std::string FamilyRegistry::to_string() const {
  std::vector<std::string> lines;
  lines.reserve(entries_.size());
  for (const Entry& e : entries_) {
    lines.push_back(support::strf("  %-8s %s", e.name.c_str(),
                                  e.description.c_str()));
  }
  return support::join(lines, "\n");
}

namespace {

void register_builtins(FamilyRegistry& reg) {
  for (int n = 3; n <= 6; ++n) {
    reg.add(support::strf("chain%d", n),
            support::strf("matrix chain of %d factors (%lld schedules)", n,
                          chain::schedule_count(n)),
            [n] { return std::make_unique<ChainFamily>(n); });
  }
  reg.add("aatb", "A*A'*B (paper Sec. 3.2.2, 5 algorithms)",
          [] { return std::make_unique<AatbFamily>(); });
  reg.add("gram", "A*A', the bare symmetric rank-k product", [] {
    const ExprPtr a = Expr::operand("A", 0, 1);
    return std::make_unique<DslFamily>("gram", Expr::syrk(a));
  });
  reg.add("aatbc", "A*A'*B*C, symmetric-headed 4-factor chain", [] {
    const ExprPtr a = Expr::operand("A", 0, 1);
    const ExprPtr b = Expr::operand("B", 0, 2);
    const ExprPtr c = Expr::operand("C", 2, 3);
    return std::make_unique<DslFamily>("aatbc", a * t(a) * b * c);
  });
}

}  // namespace

FamilyRegistry& registry() {
  static FamilyRegistry* instance = [] {
    auto* reg = new FamilyRegistry();
    register_builtins(*reg);
    return reg;
  }();
  return *instance;
}

std::unique_ptr<ExpressionFamily> make_family(const std::string& name) {
  return registry().make(name);
}

}  // namespace lamb::expr
