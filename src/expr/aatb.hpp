// The expression X := A * A^T * B (paper Sec. 3.2.2).
//
// A is d0 x d1, B is d0 x d2. Five algorithms, paper numbering:
//   1: SYRK(M := A A^T);            SYMM(X := M B)
//   2: SYRK(M := A A^T); tricopy;   GEMM(X := M B)
//   3: GEMM(M := A A^T);            SYMM(X := M B)
//   4: GEMM(M := A A^T);            GEMM(X := M B)
//   5: GEMM(M := A^T B);            GEMM(X := A M)
// FLOP counts (paper conventions):
//   1, 2: d0*((d0+1)*d1 + 2*d0*d2)     (the triangle copy costs no FLOPs)
//   3, 4: 2*d0^2*(d1 + d2)
//   5:    4*d0*d1*d2
#pragma once

#include <vector>

#include "model/algorithm.hpp"

namespace lamb::expr {

/// All five algorithms in the paper's order, for instance (d0, d1, d2).
std::vector<model::Algorithm> enumerate_aatb_algorithms(la::index_t d0,
                                                        la::index_t d1,
                                                        la::index_t d2);

/// Closed-form FLOP counts per algorithm id (1-based), for cross-checks.
long long aatb_flops(int algorithm_id, la::index_t d0, la::index_t d1,
                     la::index_t d2);

}  // namespace lamb::expr
