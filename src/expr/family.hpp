// Expression families: the generic interface the anomaly experiments run
// against. A family maps an instance (a tuple of free dimension sizes) to
// its set of mathematically-equivalent algorithms and can materialise random
// external operands for real execution.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "model/algorithm.hpp"
#include "support/rng.hpp"

namespace lamb::expr {

/// A point in a family's instance space, e.g. (d0, d1, d2, d3, d4).
using Instance = std::vector<int>;

class ExpressionFamily {
 public:
  virtual ~ExpressionFamily() = default;

  virtual std::string name() const = 0;

  /// Number of free dimensions of an instance.
  virtual int dimension_count() const = 0;

  /// Names for reports: "d0", "d1", ...
  std::vector<std::string> dimension_names() const;

  /// The set of algorithms for an instance, in the paper's canonical order.
  virtual std::vector<model::Algorithm> algorithms(
      const Instance& dims) const = 0;

  /// Random external operands matching the algorithms' external table.
  virtual std::vector<la::Matrix> make_externals(const Instance& dims,
                                                 support::Rng& rng) const = 0;

 protected:
  void check_instance(const Instance& dims) const;
};

/// X := A1 * ... * An, instance (d0, ..., dn); algorithms are all (n-1)!
/// multiplication schedules (paper Sec. 3.2.1 for n = 4).
class ChainFamily final : public ExpressionFamily {
 public:
  explicit ChainFamily(int length = 4);

  std::string name() const override;
  int dimension_count() const override { return length_ + 1; }
  std::vector<model::Algorithm> algorithms(const Instance& dims) const override;
  std::vector<la::Matrix> make_externals(const Instance& dims,
                                         support::Rng& rng) const override;

  int length() const { return length_; }

 private:
  int length_;
};

/// X := A * A^T * B, instance (d0, d1, d2); the five algorithms of
/// paper Sec. 3.2.2.
class AatbFamily final : public ExpressionFamily {
 public:
  std::string name() const override { return "aatb"; }
  int dimension_count() const override { return 3; }
  std::vector<model::Algorithm> algorithms(const Instance& dims) const override;
  std::vector<la::Matrix> make_externals(const Instance& dims,
                                         support::Rng& rng) const override;
};

}  // namespace lamb::expr
