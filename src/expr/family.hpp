// Expression families: the generic interface the anomaly experiments run
// against. A family maps an instance (a tuple of free dimension sizes) to
// its set of mathematically-equivalent algorithms and can materialise random
// external operands for real execution.
//
// Families are defined through the expression DSL (expr/expr.hpp): DslFamily
// enumerates the algorithm set generically from an expression, so a new
// family is one expression plus a registry entry (expr/registry.hpp) —
// ChainFamily and AatbFamily below are exactly that.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.hpp"
#include "la/matrix.hpp"
#include "model/algorithm.hpp"
#include "support/rng.hpp"

namespace lamb::expr {

class ExpressionFamily {
 public:
  virtual ~ExpressionFamily() = default;

  virtual std::string name() const = 0;

  /// Number of free dimensions of an instance.
  virtual int dimension_count() const = 0;

  /// Names for reports: "d0", "d1", ...
  std::vector<std::string> dimension_names() const;

  /// The set of algorithms for an instance, in the paper's canonical order.
  virtual std::vector<model::Algorithm> algorithms(
      const Instance& dims) const = 0;

  /// Random external operands matching the algorithms' external table.
  virtual std::vector<la::Matrix> make_externals(const Instance& dims,
                                                 support::Rng& rng) const = 0;

 protected:
  void check_instance(const Instance& dims) const;
};

/// A family defined entirely by a DSL expression: the algorithm set is
/// enumerated generically (schedules + symmetric rank-k rewrites) and the
/// externals follow the expression's operand table.
class DslFamily : public ExpressionFamily {
 public:
  DslFamily(std::string name, ExprPtr expression,
            EnumerationOptions options = {});

  std::string name() const override { return name_; }
  int dimension_count() const override { return dimension_count_; }
  std::vector<model::Algorithm> algorithms(const Instance& dims) const override;
  std::vector<la::Matrix> make_externals(const Instance& dims,
                                         support::Rng& rng) const override;

  const ExprPtr& expression() const { return expression_; }

 private:
  std::string name_;
  ExprPtr expression_;
  EnumerationOptions options_;
  FlatProduct flat_;
  int dimension_count_ = 0;
};

/// X := A1 * ... * An, instance (d0, ..., dn); algorithms are all (n-1)!
/// multiplication schedules (paper Sec. 3.2.1 for n = 4).
class ChainFamily final : public DslFamily {
 public:
  explicit ChainFamily(int length = 4);

  int length() const { return length_; }

 private:
  int length_;
};

/// X := A * A^T * B, instance (d0, d1, d2); the five algorithms of
/// paper Sec. 3.2.2 fall out of the DSL's symmetric rank-k rewrite.
class AatbFamily final : public DslFamily {
 public:
  AatbFamily();
};

}  // namespace lamb::expr
