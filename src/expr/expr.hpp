// Expression DSL: the small term language from which equivalent-algorithm
// sets are enumerated generically.
//
// An expression is a tree of three node kinds — operand leaves (named, with
// symbolic dimensions indexing into an Instance), transposes and products.
// Operand dimensions are *symbolic*: `rows_dim`/`cols_dim` index the family's
// instance tuple, so one expression describes the whole instance space.
//
// From an expression the enumerator derives the paper's algorithm sets:
//   * the product is flattened into a factor list (transposes are pushed down
//     to the leaves via (XY)' = Y'X' and X'' = X),
//   * every multiplication schedule over the factors is generated in
//     first-choice-major order — the ordering that reproduces the paper's
//     Algorithm 1..6 numbering for the 4-chain,
//   * a step multiplying X by X' is recognised as a symmetric rank-k product
//     and expanded into the paper's kernel variants (SYRK+SYMM,
//     SYRK+tricopy+GEMM, GEMM+SYMM, GEMM+GEMM — Sec. 3.2.2's five A*A'*B
//     algorithms fall out of this rewrite).
//
// The result is a vector of model::Algorithm built through the validating
// builder, so every enumerated algorithm is correct by construction and can
// be executed or timed generically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/algorithm.hpp"

namespace lamb::expr {

/// A point in a family's instance space, e.g. (d0, d1, d2, d3, d4).
using Instance = std::vector<int>;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind { kOperand, kTranspose, kProduct, kSyrk };

  /// Leaf: a named external operand of symbolic shape
  /// dims[rows_dim] x dims[cols_dim]. The same name may appear several times
  /// (e.g. A and A' in A*A'*B); all appearances must agree on the shape.
  static ExprPtr operand(std::string name, int rows_dim, int cols_dim);
  static ExprPtr transpose(ExprPtr inner);
  static ExprPtr product(ExprPtr lhs, ExprPtr rhs);
  /// Symmetric rank-k node: syrk(X) == X * X'. Pure sugar — it flattens to
  /// the two-factor product, which the enumerator then recognises and expands
  /// into the SYRK / SYMM kernel variants.
  static ExprPtr syrk(ExprPtr inner);

  Kind kind() const { return kind_; }

  // Operand accessors (kind() == kOperand only).
  const std::string& operand_name() const { return name_; }
  int rows_dim() const { return rows_dim_; }
  int cols_dim() const { return cols_dim_; }

  // Child accessors (kTranspose uses lhs only).
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Rendering for reports and registry listings, e.g. "A*A'*B".
  std::string to_string() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kOperand;
  std::string name_;
  int rows_dim_ = -1;
  int cols_dim_ = -1;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Infix sugar: product and transpose.
ExprPtr operator*(const ExprPtr& lhs, const ExprPtr& rhs);
ExprPtr t(const ExprPtr& x);

/// One external operand of a flattened expression, in first-appearance order.
struct ExternalSpec {
  std::string name;
  int rows_dim = -1;
  int cols_dim = -1;
};

/// One factor of the flattened top-level product: an external (by index into
/// FlatProduct::externals), possibly transposed.
struct Factor {
  int external = -1;
  bool trans = false;
};

/// An expression flattened to externals + factor list, with transposes pushed
/// down to the leaves. Throws support::CheckError when two appearances of the
/// same operand name disagree on shape.
struct FlatProduct {
  std::vector<ExternalSpec> externals;
  std::vector<Factor> factors;

  /// Number of instance dimensions the expression references (max index + 1).
  int dimension_count() const;
};

FlatProduct flatten(const ExprPtr& root);

struct EnumerationOptions {
  /// Recognise X*X' steps as symmetric rank-k products and emit the SYRK /
  /// SYMM kernel variants alongside the plain GEMM lowering.
  bool symmetric_rewrites = true;
};

/// Enumerate every algorithm for `root` at the concrete instance `dims`.
/// Algorithms are named `<name_prefix><i>` (1-based) in enumeration order:
/// schedules in first-choice-major order, symmetric kernel variants expanded
/// innermost in the paper's (SYRK,SYMM), (SYRK,GEMM), (GEMM,SYMM),
/// (GEMM,GEMM) order.
std::vector<model::Algorithm> enumerate_algorithms(
    const ExprPtr& root, const Instance& dims, const std::string& name_prefix,
    const EnumerationOptions& options = {});

}  // namespace lamb::expr
