#include "expr/aatb.hpp"

#include "expr/expr.hpp"
#include "support/check.hpp"

namespace lamb::expr {

using model::Algorithm;

std::vector<Algorithm> enumerate_aatb_algorithms(la::index_t d0,
                                                 la::index_t d1,
                                                 la::index_t d2) {
  LAMB_CHECK(d0 >= 1 && d1 >= 1 && d2 >= 1, "aatb dims must be positive");
  // The five algorithms are the DSL enumeration of A*A'*B: two schedules,
  // the first of which is the symmetric rank-k product A*A' expanded into
  // the paper's four kernel variants.
  const ExprPtr a = Expr::operand("A", 0, 1);
  const ExprPtr b = Expr::operand("B", 0, 2);
  const Instance dims = {static_cast<int>(d0), static_cast<int>(d1),
                         static_cast<int>(d2)};
  std::vector<Algorithm> out =
      enumerate_algorithms(a * t(a) * b, dims, "aatb-alg");
  LAMB_CHECK(out.size() == 5, "aatb must enumerate the paper's 5 algorithms");
  return out;
}

long long aatb_flops(int algorithm_id, la::index_t d0, la::index_t d1,
                     la::index_t d2) {
  const auto D0 = static_cast<long long>(d0);
  const auto D1 = static_cast<long long>(d1);
  const auto D2 = static_cast<long long>(d2);
  switch (algorithm_id) {
    case 1:
    case 2:
      return D0 * ((D0 + 1) * D1 + 2 * D0 * D2);
    case 3:
    case 4:
      return 2 * D0 * D0 * (D1 + D2);
    case 5:
      return 4 * D0 * D1 * D2;
    default:
      LAMB_CHECK(false, "aatb algorithm id must be 1..5");
  }
  return 0;
}

}  // namespace lamb::expr
