#include "expr/aatb.hpp"

#include "support/check.hpp"

namespace lamb::expr {

using model::Algorithm;

std::vector<Algorithm> enumerate_aatb_algorithms(la::index_t d0,
                                                 la::index_t d1,
                                                 la::index_t d2) {
  LAMB_CHECK(d0 >= 1 && d1 >= 1 && d2 >= 1, "aatb dims must be positive");
  std::vector<Algorithm> out;
  out.reserve(5);

  {  // Algorithm 1: SYRK then SYMM.
    Algorithm alg("aatb-alg1");
    const int a = alg.add_external(d0, d1, "A");
    const int b = alg.add_external(d0, d2, "B");
    const int m = alg.add_syrk(a, "M");
    alg.add_symm(m, b, "X");
    out.push_back(std::move(alg));
  }
  {  // Algorithm 2: SYRK, triangle copy, then GEMM.
    Algorithm alg("aatb-alg2");
    const int a = alg.add_external(d0, d1, "A");
    const int b = alg.add_external(d0, d2, "B");
    const int m = alg.add_syrk(a, "M");
    const int mf = alg.add_tricopy(m, "Mf");
    alg.add_gemm(mf, b, false, false, "X");
    out.push_back(std::move(alg));
  }
  {  // Algorithm 3: GEMM (A * A^T) then SYMM.
    Algorithm alg("aatb-alg3");
    const int a = alg.add_external(d0, d1, "A");
    const int b = alg.add_external(d0, d2, "B");
    const int m = alg.add_gemm(a, a, false, true, "M");
    alg.add_symm(m, b, "X");
    out.push_back(std::move(alg));
  }
  {  // Algorithm 4: GEMM (A * A^T) then GEMM.
    Algorithm alg("aatb-alg4");
    const int a = alg.add_external(d0, d1, "A");
    const int b = alg.add_external(d0, d2, "B");
    const int m = alg.add_gemm(a, a, false, true, "M");
    alg.add_gemm(m, b, false, false, "X");
    out.push_back(std::move(alg));
  }
  {  // Algorithm 5: GEMM (A^T * B) then GEMM (A * M).
    Algorithm alg("aatb-alg5");
    const int a = alg.add_external(d0, d1, "A");
    const int b = alg.add_external(d0, d2, "B");
    const int m = alg.add_gemm(a, b, true, false, "M");
    alg.add_gemm(a, m, false, false, "X");
    out.push_back(std::move(alg));
  }
  return out;
}

long long aatb_flops(int algorithm_id, la::index_t d0, la::index_t d1,
                     la::index_t d2) {
  const auto D0 = static_cast<long long>(d0);
  const auto D1 = static_cast<long long>(d1);
  const auto D2 = static_cast<long long>(d2);
  switch (algorithm_id) {
    case 1:
    case 2:
      return D0 * ((D0 + 1) * D1 + 2 * D0 * D2);
    case 3:
    case 4:
      return 2 * D0 * D0 * (D1 + D2);
    case 5:
      return 4 * D0 * D1 * D2;
    default:
      LAMB_CHECK(false, "aatb algorithm id must be 1..5");
  }
  return 0;
}

}  // namespace lamb::expr
