#include "expr/family.hpp"

#include "chain/chain.hpp"
#include "expr/aatb.hpp"
#include "la/generators.hpp"
#include "support/check.hpp"
#include "support/str.hpp"

namespace lamb::expr {

std::vector<std::string> ExpressionFamily::dimension_names() const {
  std::vector<std::string> names;
  const int n = dimension_count();
  names.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    names.push_back(support::strf("d%d", i));
  }
  return names;
}

void ExpressionFamily::check_instance(const Instance& dims) const {
  LAMB_CHECK(static_cast<int>(dims.size()) == dimension_count(),
             "instance arity mismatch for family " + name());
  for (int d : dims) {
    LAMB_CHECK(d >= 1, "instance dimensions must be positive");
  }
}

ChainFamily::ChainFamily(int length) : length_(length) {
  LAMB_CHECK(length >= 2, "chain family needs at least two matrices");
}

std::string ChainFamily::name() const {
  return support::strf("chain%d", length_);
}

std::vector<model::Algorithm> ChainFamily::algorithms(
    const Instance& dims) const {
  check_instance(dims);
  chain::ChainDims cd(dims.begin(), dims.end());
  return chain::enumerate_chain_schedules(cd);
}

std::vector<la::Matrix> ChainFamily::make_externals(const Instance& dims,
                                                    support::Rng& rng) const {
  check_instance(dims);
  std::vector<la::Matrix> out;
  out.reserve(static_cast<std::size_t>(length_));
  for (int i = 0; i < length_; ++i) {
    out.push_back(la::random_matrix(dims[static_cast<std::size_t>(i)],
                                    dims[static_cast<std::size_t>(i) + 1],
                                    rng));
  }
  return out;
}

std::vector<model::Algorithm> AatbFamily::algorithms(
    const Instance& dims) const {
  check_instance(dims);
  return enumerate_aatb_algorithms(dims[0], dims[1], dims[2]);
}

std::vector<la::Matrix> AatbFamily::make_externals(const Instance& dims,
                                                   support::Rng& rng) const {
  check_instance(dims);
  std::vector<la::Matrix> out;
  out.reserve(2);
  out.push_back(la::random_matrix(dims[0], dims[1], rng));
  out.push_back(la::random_matrix(dims[0], dims[2], rng));
  return out;
}

}  // namespace lamb::expr
