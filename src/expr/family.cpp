#include "expr/family.hpp"

#include "chain/chain.hpp"
#include "la/generators.hpp"
#include "support/check.hpp"
#include "support/str.hpp"

namespace lamb::expr {

std::vector<std::string> ExpressionFamily::dimension_names() const {
  std::vector<std::string> names;
  const int n = dimension_count();
  names.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    names.push_back(support::strf("d%d", i));
  }
  return names;
}

void ExpressionFamily::check_instance(const Instance& dims) const {
  LAMB_CHECK(static_cast<int>(dims.size()) == dimension_count(),
             "instance arity mismatch for family " + name());
  for (int d : dims) {
    LAMB_CHECK(d >= 1, "instance dimensions must be positive");
  }
}

DslFamily::DslFamily(std::string name, ExprPtr expression,
                     EnumerationOptions options)
    : name_(std::move(name)),
      expression_(std::move(expression)),
      options_(options),
      flat_(flatten(expression_)),
      dimension_count_(flat_.dimension_count()) {
  LAMB_CHECK(!name_.empty(), "family needs a name");
  LAMB_CHECK(flat_.factors.size() >= 2,
             "family expression must be a product of at least two factors");
}

std::vector<model::Algorithm> DslFamily::algorithms(
    const Instance& dims) const {
  check_instance(dims);
  return enumerate_algorithms(expression_, dims, name_ + "-alg", options_);
}

std::vector<la::Matrix> DslFamily::make_externals(const Instance& dims,
                                                  support::Rng& rng) const {
  check_instance(dims);
  std::vector<la::Matrix> out;
  out.reserve(flat_.externals.size());
  for (const ExternalSpec& e : flat_.externals) {
    out.push_back(la::random_matrix(
        dims[static_cast<std::size_t>(e.rows_dim)],
        dims[static_cast<std::size_t>(e.cols_dim)], rng));
  }
  return out;
}

namespace {

ExprPtr chain_expression(int length) {
  LAMB_CHECK(length >= 2, "chain family needs at least two matrices");
  const std::vector<std::string> names = chain::chain_operand_names(length);
  ExprPtr expr = Expr::operand(names[0], 0, 1);
  for (int i = 1; i < length; ++i) {
    expr = expr * Expr::operand(names[static_cast<std::size_t>(i)], i, i + 1);
  }
  return expr;
}

ExprPtr aatb_expression() {
  const ExprPtr a = Expr::operand("A", 0, 1);
  const ExprPtr b = Expr::operand("B", 0, 2);
  return a * t(a) * b;
}

}  // namespace

ChainFamily::ChainFamily(int length)
    : DslFamily(support::strf("chain%d", length), chain_expression(length)),
      length_(length) {}

AatbFamily::AatbFamily() : DslFamily("aatb", aatb_expression()) {}

}  // namespace lamb::expr
