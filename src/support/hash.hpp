// FNV-1a 64-bit hashing.
//
// Used wherever a stable, seedable, endian-independent byte hash is needed:
// store/ file checksums, AtlasStore file names, and shard selection in the
// serving layer's concurrent cache. Not cryptographic — integrity checks
// here guard against truncation and bit rot, not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lamb::support {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnvOffset) {
  return fnv1a64(s.data(), s.size(), seed);
}

}  // namespace lamb::support
