// Explicit little-endian byte encoding, independent of host endianness.
//
// The store/ serialization layer writes every multi-byte value through these
// helpers so files produced on any host read back identically on any other.
// Doubles travel as their IEEE-754 bit pattern via std::bit_cast.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace lamb::support {

inline void append_le16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

inline void append_le32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void append_le64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void append_f64(std::string& out, double v) {
  append_le64(out, std::bit_cast<std::uint64_t>(v));
}

/// Loads assume `p` points at the required number of valid bytes; bounds
/// checking is the reader's job (store::ByteReader).
inline std::uint16_t load_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

inline double load_f64(const unsigned char* p) {
  return std::bit_cast<double>(load_le64(p));
}

}  // namespace lamb::support
