// Minimal CSV writer. Every bench dumps its raw series next to the rendered
// terminal report so the paper's figures can also be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace lamb::support {

/// Writes RFC-4180-ish CSV rows (quotes fields containing separators).
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error if that fails.
  explicit CsvWriter(const std::string& path);

  /// Write a header or data row.
  void row(const std::vector<std::string>& fields);

  /// Convenience: first field is a label, the rest are numbers.
  void row(const std::string& label, const std::vector<double>& values);

  /// Number of rows written so far (including headers).
  std::size_t rows_written() const { return rows_; }

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& field);

  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

/// Create the directory for experiment outputs if missing; returns the path.
std::string ensure_results_dir(const std::string& dir = "results");

}  // namespace lamb::support
