// Capacity-bounded least-recently-used cache.
//
// One map + intrusive recency list; not synchronised — callers that share a
// cache across threads wrap it in a mutex (serve/ stripes many of these
// behind per-shard mutexes, MeasuredMachine keeps a single private one).
// `capacity == 0` means unbounded, for callers that only want the counters.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace lamb::support {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and marks it most-recently-used.
  std::optional<Value> get(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when over
  /// capacity.
  void put(const Key& key, Value value) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    if (capacity_ > 0 && map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Drops every entry and resets the hit/miss counters — a cleared cache
  /// reports a fresh hit rate instead of one skewed by its previous life
  /// (serve/'s cache-hit-rate reporting depends on this).
  void clear() {
    map_.clear();
    order_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lamb::support
