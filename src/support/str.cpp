#include "support/str.hpp"

#include <cmath>
#include <cstdlib>

namespace lamb::support {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

std::string format_double(double x, int decimals) {
  if (x != 0.0 && (std::abs(x) < 1e-3 || std::abs(x) >= 1e7)) {
    return strf("%.*e", decimals, x);
  }
  return strf("%.*f", decimals, x);
}

std::string format_percent(double fraction, int decimals) {
  return strf("%.*f%%", decimals, fraction * 100.0);
}

std::string format_count(long long n) {
  const bool neg = n < 0;
  unsigned long long v =
      neg ? 0ULL - static_cast<unsigned long long>(n)
          : static_cast<unsigned long long>(n);
  std::string digits = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c > 0 && c % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++c;
  }
  if (neg) {
    out += '-';
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace lamb::support
