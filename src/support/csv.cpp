#include "support/csv.hpp"

#include <filesystem>
#include <stdexcept>

#include "support/str.hpp"

namespace lamb::support {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::string& label,
                    const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) {
    fields.push_back(strf("%.17g", v));
  }
  row(fields);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string ensure_results_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace lamb::support
