#include "support/check.hpp"

#include <sstream>

namespace lamb::support {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace lamb::support
