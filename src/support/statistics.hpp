// Small-sample statistics used by the measurement protocol and the
// experiment reports (medians of repetitions, quantiles of score
// distributions, histogram binning for the thickness plots).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lamb::support {

/// Median of a sample (copies and partially sorts). Requires non-empty input.
double median(std::span<const double> xs);

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::span<const double> xs, double q);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Indices of all elements within rel_tol of the minimum (the "argmin set").
/// With rel_tol == 0 this is the set of exact minimizers.
std::vector<std::size_t> argmin_set(std::span<const double> xs,
                                    double rel_tol = 0.0);

/// Fixed-width histogram of `xs` over [lo, hi] with `bins` bins; values
/// outside the range are clamped into the first/last bin.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  std::size_t total() const;
};

Histogram make_histogram(std::span<const double> xs, double lo, double hi,
                         std::size_t bins);

/// Online summary accumulator (count/mean/min/max) for streaming reports.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lamb::support
