// Prometheus text-exposition writer (the format scripts/metrics_lint.sh
// pins): every family announces # HELP and # TYPE before its first series,
// counters are integral, gauges may be fractional, histograms emit the
// cumulative _bucket/_sum/_count triple. Extracted from the hand-rolled
// snprintf block in net/routes.cpp so every emitter (serving stats, PMU
// families, future subsystems) shares one implementation — and so the
// kind declared by family() is enforced: emitting a gauge through a
// counter helper is the class of bug this replaces.
#pragma once

#include <cstdint>
#include <string>

#include "support/histogram.hpp"

namespace lamb::support {

class MetricsWriter {
 public:
  explicit MetricsWriter(std::size_t reserve = 4096) { out_.reserve(reserve); }

  /// Declare a family: kind is "counter", "gauge" or "histogram". Must
  /// precede the family's first series (the lint rejects orphan series).
  void family(const char* name, const char* kind, const char* help);

  /// One counter series; labels like "{source=\"cache\"}" or "" for none.
  /// The family must have been declared "counter" (LAMB_CHECK enforced —
  /// scrape-path cost, never hot-path).
  void counter(const char* name, std::uint64_t value) {
    counter(name, "", value);
  }
  void counter(const char* name, const char* labels, std::uint64_t value);

  /// One gauge series (fractional allowed; integral values print exact).
  void gauge(const char* name, double value) { gauge(name, "", value); }
  void gauge(const char* name, const char* labels, double value);

  /// The full histogram triple from a snapshot; label ("stage=\"kernel\"",
  /// no braces) is prefixed onto each bucket's `le`.
  void histogram(const char* name, const std::string& label,
                 const LatencyHistogram::Snapshot& snap);

  /// A raw pre-formatted line (escape hatch for e.g. lamb_build_info's
  /// label-only constant); must still follow its family().
  void raw(const std::string& line) { out_ += line; }

  std::string take() { return std::move(out_); }

 private:
  void check_kind(const char* name, const char* expected) const;

  std::string out_;
  /// The last declared family, for kind enforcement. One family's series
  /// are contiguous in this format, so remembering only the latest
  /// declaration suffices.
  std::string last_family_;
  std::string last_kind_;
};

}  // namespace lamb::support
