// ASCII table renderer for the bench reports (confusion matrices, per-row
// paper-vs-reproduced comparisons).
#pragma once

#include <string>
#include <vector>

namespace lamb::support {

/// Builds a fixed-column ASCII table with a header row and box-drawing rules.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator before the next added row.
  void add_separator();

  /// Render the table; every line is terminated with '\n'.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace lamb::support
