// Deterministic fault injection for robustness testing.
//
// A small registry of named sites threaded through the stack (store reads and
// writes, slice builds, the network accept/write paths, drift probes). Each
// site is armed with a spec — fire always, every Nth call, or with a seeded
// probability — via the LAMB_FAULT environment variable or the programmatic
// FaultScope test API. Disabled cost is a single relaxed atomic load, so the
// checks may sit on hot paths: with nothing armed the served answers are
// byte-identical to a build without any injection at all.
//
//   LAMB_FAULT="build.slice=always,store.read=1/3,net.write=0.02:limit=20"
//   LAMB_FAULT_SEED=42
//
// Per-site call counters (not wall clocks or thread ids) drive every decision,
// so a given spec fires on the same call ordinals in every run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace lamb::support {

/// Every injection point in the codebase. Adding a site means adding an enum
/// entry, its name in fault_site_name(), and one fault_fire() call.
enum class FaultSite : int {
  kStoreRead = 0,   // store::read_file throws SerialError
  kStoreWrite,      // store::write_file throws before the atomic rename
  kBuildSlice,      // SelectionService slice build throws runtime_error
  kBuildDelayMs,    // slice build sleeps for the armed value (milliseconds)
  kNetAccept,       // reactor drops a freshly accepted connection
  kNetWrite,        // reactor treats a socket write as ECONNRESET
  kDriftProbe,      // DriftMonitor probe measurement throws
  kAllocBuild,      // slice build throws std::bad_alloc
};

inline constexpr int kFaultSiteCount = 8;

/// Canonical site name ("store.read", "build.slice", ...).
std::string_view fault_site_name(FaultSite site);

/// Parse a site name; returns false when unknown.
bool fault_site_from(std::string_view name, FaultSite& out);

namespace detail {
extern std::atomic<bool> g_fault_enabled;
bool fault_fire_slow(FaultSite site);
std::uint64_t fault_value_slow(FaultSite site);
}  // namespace detail

/// True when `site` should inject a fault on this call. When nothing is
/// armed this is one relaxed load and no branch into the registry.
inline bool fault_fire(FaultSite site) {
  return detail::g_fault_enabled.load(std::memory_order_relaxed) &&
         detail::fault_fire_slow(site);
}

/// Value-carrying variant for sites like build.delay_ms: returns the armed
/// value when the site fires on this call, 0 otherwise (including disabled).
inline std::uint64_t fault_value(FaultSite site) {
  if (!detail::g_fault_enabled.load(std::memory_order_relaxed)) {
    return 0;
  }
  return detail::fault_value_slow(site);
}

/// Arm sites from a comma-separated spec list. Each entry is
///
///   site=mode[:key=value ...]
///
/// where mode is `always`, `1/N` (every Nth call, first call fires),
/// a probability in (0, 1) drawn from a per-site stream seeded by `seed`,
/// or — for value sites like build.delay_ms — a bare integer payload.
/// Modifiers: `after=N` skips the first N calls, `limit=N` stops injecting
/// after N fires (lets chaos runs recover without a restart). Replaces any
/// previous arming; throws CheckError on malformed specs. An empty spec
/// disarms everything.
void fault_arm(std::string_view spec, std::uint64_t seed = 0);

/// Disarm every site and zero the per-site injected counters.
void fault_disarm_all();

/// Arm from LAMB_FAULT / LAMB_FAULT_SEED when set; no-op otherwise.
void fault_arm_from_env();

/// Number of faults injected at `site` since the last arming.
std::uint64_t fault_injected(FaultSite site);

/// Sum of fault_injected over all sites.
std::uint64_t fault_injected_total();

/// RAII test helper: arms `spec` for the scope and restores the previous
/// arming string (with fresh counters) on destruction.
class FaultScope {
 public:
  explicit FaultScope(std::string_view spec, std::uint64_t seed = 0);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string previous_;
  std::uint64_t previous_seed_;
};

}  // namespace lamb::support
