#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace lamb::support {

double median(std::span<const double> xs) {
  LAMB_CHECK(!xs.empty(), "median of empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) {
    return v[mid];
  }
  const double hi = v[mid];
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mean(std::span<const double> xs) {
  LAMB_CHECK(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) {
    s += (x - m) * (x - m);
  }
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  LAMB_CHECK(!xs.empty(), "quantile of empty sample");
  LAMB_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) {
    return v.front();
  }
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= v.size()) {
    return v.back();
  }
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

double min_value(std::span<const double> xs) {
  LAMB_CHECK(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  LAMB_CHECK(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<std::size_t> argmin_set(std::span<const double> xs,
                                    double rel_tol) {
  LAMB_CHECK(!xs.empty(), "argmin_set of empty sample");
  LAMB_CHECK(rel_tol >= 0.0, "argmin_set: negative tolerance");
  const double lo = min_value(xs);
  const double cutoff = lo + std::abs(lo) * rel_tol;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= cutoff) {
      out.push_back(i);
    }
  }
  return out;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) {
    t += c;
  }
  return t;
}

Histogram make_histogram(std::span<const double> xs, double lo, double hi,
                         std::size_t bins) {
  LAMB_CHECK(bins > 0, "histogram needs at least one bin");
  LAMB_CHECK(hi > lo, "histogram range must be non-empty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
}

double RunningStats::mean() const {
  LAMB_CHECK(n_ > 0, "mean of empty accumulator");
  return sum_ / static_cast<double>(n_);
}

double RunningStats::min() const {
  LAMB_CHECK(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  LAMB_CHECK(n_ > 0, "max of empty accumulator");
  return max_;
}

}  // namespace lamb::support
