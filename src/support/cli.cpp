#include "support/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace lamb::support {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      flags_[arg.substr(3)] = "false";
      continue;
    }
    // "--name value" when the next token is not itself a flag and parses as a
    // value; otherwise treat as boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

long long Cli::get_int(const std::string& name, long long default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  return std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw std::invalid_argument("flag --" + name + " expects a boolean, got " +
                              v);
}

std::uint64_t Cli::get_seed(const std::string& name,
                            std::uint64_t default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  return std::stoull(it->second);
}

}  // namespace lamb::support
