// Lock-free latency histogram shared by the HTTP front-end and the trace
// simulator: fixed 1-2-5 bucket bounds from 10us to 10s (request handling
// spans nanosecond cache hits to multi-second cold atlas builds), relaxed
// atomic counters, and a plain snapshot for rendering. Sum is kept in
// integer nanoseconds so concurrent record() calls never lose precision to
// a racing double. Snapshots extract percentiles by linear interpolation
// inside the matched bucket (the Prometheus histogram_quantile estimator),
// so p50/p99/p999 cost no per-sample storage.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>

namespace lamb::support {

class LatencyHistogram {
 public:
  /// Upper bucket bounds in seconds; an implicit +Inf bucket follows.
  static constexpr std::array<double, 18> kBounds = {
      1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
      1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0};

  struct Snapshot {
    std::array<std::uint64_t, kBounds.size() + 1> counts{};  ///< per bucket
    std::uint64_t count = 0;
    double sum_seconds = 0.0;

    /// Accumulate another snapshot into this one (per-reactor histograms
    /// are merged this way at /metrics scrape time). Bucket bounds are a
    /// compile-time constant shared by every histogram, so merging is a
    /// plain element-wise sum.
    void merge(const Snapshot& other) {
      for (std::size_t b = 0; b < counts.size(); ++b) {
        counts[b] += other.counts[b];
      }
      count += other.count;
      sum_seconds += other.sum_seconds;
    }

    /// Estimated q-quantile (q clamped to [0, 1]) of the recorded values:
    /// the rank is located in the cumulative bucket counts and linearly
    /// interpolated between the bucket's bounds. Values landing in the
    /// +Inf bucket answer the largest finite bound (the estimate cannot
    /// exceed what the histogram resolved). NaN when empty — "no data" must
    /// not read as "zero latency" (callers that want a placeholder check
    /// count themselves).
    double quantile(double q) const {
      if (count == 0) {
        return std::numeric_limits<double>::quiet_NaN();
      }
      q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
      const double rank = q * static_cast<double>(count);
      double cumulative = 0.0;
      for (std::size_t b = 0; b < counts.size(); ++b) {
        const double in_bucket = static_cast<double>(counts[b]);
        if (cumulative + in_bucket < rank || in_bucket == 0.0) {
          cumulative += in_bucket;
          continue;
        }
        if (b >= kBounds.size()) {
          return kBounds.back();  // +Inf bucket: clamp to the last bound
        }
        const double lower = b == 0 ? 0.0 : kBounds[b - 1];
        const double upper = kBounds[b];
        const double fraction = (rank - cumulative) / in_bucket;
        return lower + (upper - lower) * fraction;
      }
      return kBounds.back();
    }
  };

  void record(double seconds) {
    std::size_t b = 0;
    while (b < kBounds.size() && seconds > kBounds[b]) {
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  }

  /// Fold another histogram's counts into this one. Reads the source with
  /// the same relaxed loads snapshot() uses, so merging a live histogram is
  /// safe (the result is some consistent-enough point-in-time sum, exactly
  /// like a scrape). Integer nanosecond sums add exactly — a merge loses no
  /// precision over recording everything into one histogram.
  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      buckets_[b].fetch_add(other.buckets_[b].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      s.counts[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_seconds = static_cast<double>(
                        sum_ns_.load(std::memory_order_relaxed)) / 1e9;
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBounds.size() + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace lamb::support
