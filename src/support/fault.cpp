#include "support/fault.hpp"

#include <cstdlib>
#include <mutex>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace lamb::support {

namespace detail {
std::atomic<bool> g_fault_enabled{false};
}  // namespace detail

namespace {

enum class Mode { kOff, kAlways, kEveryNth, kProbability, kValue };

/// Arming for one site. Every field is a relaxed atomic: fault_arm may run
/// while server threads are mid-fault_fire (a chaos test re-arming under
/// live traffic), so the spec fields need atomic stores/loads, not just the
/// g_fault_enabled flip. A reader racing an arm may combine old and new
/// fields for that one call; the determinism contract only covers specs
/// armed before the traffic they shape, which is how every test uses it.
struct SiteState {
  std::atomic<Mode> mode{Mode::kOff};
  std::atomic<std::uint64_t> every_n{0};  // kEveryNth period
  std::atomic<double> probability{0.0};   // kProbability threshold
  std::atomic<std::uint64_t> value{0};    // kValue payload (e.g. delay ms)
  std::atomic<std::uint64_t> after{0};    // skip the first `after` calls
  std::atomic<std::uint64_t> limit{0};    // stop after N fires (0 = unlimited)
  std::atomic<std::uint64_t> seed{0};     // per-site stream seed
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> injected{0};
};

SiteState g_sites[kFaultSiteCount];
std::mutex g_arm_mutex;
std::string g_arm_spec;       // last spec passed to fault_arm (for FaultScope)
std::uint64_t g_arm_seed = 0;

constexpr std::string_view kSiteNames[kFaultSiteCount] = {
    "store.read",  "store.write", "build.slice", "build.delay_ms",
    "net.accept",  "net.write",   "drift.probe", "alloc.build",
};

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) {
    return false;
  }
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_probability(std::string_view s, double& out) {
  if (s.empty() || s.find('.') == std::string_view::npos) {
    return false;
  }
  try {
    std::size_t pos = 0;
    const double v = std::stod(std::string(s), &pos);
    if (pos != s.size() || !(v > 0.0) || !(v < 1.0)) {
      return false;
    }
    out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// One `site=mode[:key=value ...]` entry.
void arm_entry(std::string_view entry, std::uint64_t seed) {
  const std::size_t eq = entry.find('=');
  LAMB_CHECK(eq != std::string_view::npos,
             strf("fault: expected site=spec, got \"%.*s\"",
                  static_cast<int>(entry.size()), entry.data()));
  FaultSite site;
  const std::string_view name = entry.substr(0, eq);
  LAMB_CHECK(fault_site_from(name, site),
             strf("fault: unknown site \"%.*s\"",
                  static_cast<int>(name.size()), name.data()));

  SiteState& state = g_sites[static_cast<int>(site)];
  std::string_view rest = entry.substr(eq + 1);
  bool first = true;
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string_view tok = rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view()
                                          : rest.substr(colon + 1);
    LAMB_CHECK(!tok.empty(), "fault: empty spec token");
    if (first) {
      first = false;
      std::uint64_t n = 0;
      double p = 0.0;
      if (tok == "always") {
        state.mode.store(Mode::kAlways, std::memory_order_relaxed);
      } else if (tok.size() > 2 && tok[0] == '1' && tok[1] == '/' &&
                 parse_u64(tok.substr(2), n) && n >= 1) {
        state.mode.store(Mode::kEveryNth, std::memory_order_relaxed);
        state.every_n.store(n, std::memory_order_relaxed);
      } else if (parse_probability(tok, p)) {
        state.mode.store(Mode::kProbability, std::memory_order_relaxed);
        state.probability.store(p, std::memory_order_relaxed);
      } else if (parse_u64(tok, n)) {
        state.mode.store(Mode::kValue, std::memory_order_relaxed);
        state.value.store(n, std::memory_order_relaxed);
      } else {
        LAMB_CHECK(false,
                   strf("fault: bad spec \"%.*s\" for %.*s (want always, "
                        "1/N, a probability in (0,1), or an integer payload)",
                        static_cast<int>(tok.size()), tok.data(),
                        static_cast<int>(name.size()), name.data()));
      }
      continue;
    }
    const std::size_t meq = tok.find('=');
    LAMB_CHECK(meq != std::string_view::npos,
               strf("fault: expected key=value modifier, got \"%.*s\"",
                    static_cast<int>(tok.size()), tok.data()));
    const std::string_view key = tok.substr(0, meq);
    std::uint64_t v = 0;
    LAMB_CHECK(parse_u64(tok.substr(meq + 1), v),
               strf("fault: modifier %.*s needs an integer value",
                    static_cast<int>(key.size()), key.data()));
    if (key == "after") {
      state.after.store(v, std::memory_order_relaxed);
    } else if (key == "limit") {
      state.limit.store(v, std::memory_order_relaxed);
    } else {
      LAMB_CHECK(false, strf("fault: unknown modifier \"%.*s\"",
                             static_cast<int>(key.size()), key.data()));
    }
  }
  LAMB_CHECK(state.mode.load(std::memory_order_relaxed) != Mode::kOff,
             strf("fault: empty spec for %.*s", static_cast<int>(name.size()),
                  name.data()));
  state.seed.store(
      hash_combine(mix64(seed + 0x6c616d62ULL),
                   hash_string(kSiteNames[static_cast<int>(site)])),
      std::memory_order_relaxed);
}

}  // namespace

std::string_view fault_site_name(FaultSite site) {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kFaultSiteCount) {
    return "?";
  }
  return kSiteNames[i];
}

bool fault_site_from(std::string_view name, FaultSite& out) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    if (kSiteNames[i] == name) {
      out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

namespace detail {

bool fault_fire_slow(FaultSite site) {
  SiteState& state = g_sites[static_cast<int>(site)];
  const Mode mode = state.mode.load(std::memory_order_relaxed);
  if (mode == Mode::kOff) {
    return false;
  }
  const std::uint64_t call =
      state.calls.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t after = state.after.load(std::memory_order_relaxed);
  const std::uint64_t limit = state.limit.load(std::memory_order_relaxed);
  if (call < after) {
    return false;
  }
  if (limit != 0 &&
      state.injected.load(std::memory_order_relaxed) >= limit) {
    return false;
  }
  bool fire = false;
  switch (mode) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
    case Mode::kValue:
      fire = true;
      break;
    case Mode::kEveryNth: {
      // every_n can transiently read 0 when racing an arm: decline, don't
      // divide.
      const std::uint64_t n = state.every_n.load(std::memory_order_relaxed);
      fire = n != 0 && (call - after) % n == 0;
      break;
    }
    case Mode::kProbability: {
      // Counter-hashed rather than a shared RNG: call ordinal N fires (or
      // not) identically regardless of which thread reaches it.
      const std::uint64_t h =
          mix64(state.seed.load(std::memory_order_relaxed) ^
                (call * 0x9e3779b97f4a7c15ULL));
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 <
             state.probability.load(std::memory_order_relaxed);
      break;
    }
  }
  if (!fire) {
    return false;
  }
  if (limit != 0) {
    // Claim one of the limited slots; racing past the limit just declines.
    const std::uint64_t n =
        state.injected.fetch_add(1, std::memory_order_relaxed);
    if (n >= limit) {
      state.injected.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
  } else {
    state.injected.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::uint64_t fault_value_slow(FaultSite site) {
  return fault_fire_slow(site)
             ? g_sites[static_cast<int>(site)].value.load(
                   std::memory_order_relaxed)
             : 0;
}

}  // namespace detail

void fault_arm(std::string_view spec, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_arm_mutex);
  detail::g_fault_enabled.store(false, std::memory_order_seq_cst);
  for (SiteState& state : g_sites) {
    state.mode.store(Mode::kOff, std::memory_order_relaxed);
    state.every_n.store(0, std::memory_order_relaxed);
    state.probability.store(0.0, std::memory_order_relaxed);
    state.value.store(0, std::memory_order_relaxed);
    state.after.store(0, std::memory_order_relaxed);
    state.limit.store(0, std::memory_order_relaxed);
    state.seed.store(0, std::memory_order_relaxed);
    state.calls.store(0, std::memory_order_relaxed);
    state.injected.store(0, std::memory_order_relaxed);
  }
  g_arm_spec = std::string(spec);
  g_arm_seed = seed;

  std::string_view rest = spec;
  bool any = false;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                          : rest.substr(comma + 1);
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (entry.empty()) {
      continue;
    }
    arm_entry(entry, seed);
    any = true;
  }
  if (any) {
    detail::g_fault_enabled.store(true, std::memory_order_seq_cst);
  }
}

void fault_disarm_all() { fault_arm("", 0); }

void fault_arm_from_env() {
  const char* spec = std::getenv("LAMB_FAULT");
  if (spec == nullptr || spec[0] == '\0') {
    return;
  }
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("LAMB_FAULT_SEED")) {
    parse_u64(s, seed);
  }
  fault_arm(spec, seed);
}

std::uint64_t fault_injected(FaultSite site) {
  return g_sites[static_cast<int>(site)].injected.load(
      std::memory_order_relaxed);
}

std::uint64_t fault_injected_total() {
  std::uint64_t total = 0;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    total += fault_injected(static_cast<FaultSite>(i));
  }
  return total;
}

FaultScope::FaultScope(std::string_view spec, std::uint64_t seed) {
  {
    std::lock_guard<std::mutex> lock(g_arm_mutex);
    previous_ = g_arm_spec;
    previous_seed_ = g_arm_seed;
  }
  fault_arm(spec, seed);
}

FaultScope::~FaultScope() { fault_arm(previous_, previous_seed_); }

}  // namespace lamb::support
