#include "support/rng.hpp"

#include "support/check.hpp"

namespace lamb::support {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

std::uint64_t hash_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LAMB_CHECK(lo <= hi, "uniform: empty range");
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  LAMB_CHECK(lo <= hi, "uniform_int: empty range");
  const auto span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo + 1);
  return lo + static_cast<int>(bounded(span));
}

std::uint64_t Rng::bounded(std::uint64_t n) {
  LAMB_CHECK(n > 0, "bounded: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace lamb::support
