// Checked preconditions and invariants.
//
// LAMB_CHECK is used for conditions that indicate a programming error in the
// caller (bad dimensions, null views, ...). It throws lamb::support::CheckError
// so tests can assert on violations; it is never compiled out, because all the
// call sites guard O(n^3) work where the test costs nothing.
#pragma once

#include <stdexcept>
#include <string>

namespace lamb::support {

/// Thrown when a LAMB_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);

}  // namespace lamb::support

/// Verify a precondition; throws lamb::support::CheckError on failure.
#define LAMB_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::lamb::support::check_failed(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                      \
  } while (false)
