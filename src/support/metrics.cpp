#include "support/metrics.hpp"

#include <cstring>

#include "support/check.hpp"
#include "support/str.hpp"

namespace lamb::support {

void MetricsWriter::family(const char* name, const char* kind,
                           const char* help) {
  out_ += strf("# HELP %s %s\n", name, help);
  out_ += strf("# TYPE %s %s\n", name, kind);
  last_family_ = name;
  last_kind_ = kind;
}

void MetricsWriter::check_kind(const char* name, const char* expected) const {
  // Series must follow their own family declaration — histogram series
  // additionally carry the _bucket/_sum/_count suffix on the family name.
  const bool name_matches =
      last_family_ == name ||
      (std::strncmp(name, last_family_.c_str(), last_family_.size()) == 0 &&
       name[last_family_.size()] == '_');
  LAMB_CHECK(name_matches && last_kind_ == expected,
             strf("metrics: %s emitted as %s but family '%s' is '%s'", name,
                  expected, last_family_.c_str(), last_kind_.c_str()));
}

void MetricsWriter::counter(const char* name, const char* labels,
                            std::uint64_t value) {
  check_kind(name, "counter");
  out_ += strf("%s%s %llu\n", name, labels,
               static_cast<unsigned long long>(value));
}

void MetricsWriter::gauge(const char* name, const char* labels,
                          double value) {
  check_kind(name, "gauge");
  // %.9g keeps integral gauges exact (cache sizes, loop counts) and
  // fractional ones (hit ratios) compact.
  out_ += strf("%s%s %.9g\n", name, labels, value);
}

void MetricsWriter::histogram(const char* name, const std::string& label,
                              const LatencyHistogram::Snapshot& snap) {
  check_kind(name, "histogram");
  const std::string comma = label.empty() ? "" : label + ",";
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < LatencyHistogram::kBounds.size(); ++b) {
    cumulative += snap.counts[b];
    out_ += strf("%s_bucket{%sle=\"%g\"} %llu\n", name, comma.c_str(),
                 LatencyHistogram::kBounds[b],
                 static_cast<unsigned long long>(cumulative));
  }
  out_ += strf("%s_bucket{%sle=\"+Inf\"} %llu\n", name, comma.c_str(),
               static_cast<unsigned long long>(snap.count));
  const std::string wrap = label.empty() ? "" : "{" + label + "}";
  out_ += strf("%s_sum%s %.9f\n", name, wrap.c_str(), snap.sum_seconds);
  out_ += strf("%s_count%s %llu\n", name, wrap.c_str(),
               static_cast<unsigned long long>(snap.count));
}

}  // namespace lamb::support
