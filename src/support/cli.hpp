// Tiny command-line flag parser shared by the bench and example binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lamb::support {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  long long get_int(const std::string& name, long long default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;
  std::uint64_t get_seed(const std::string& name,
                         std::uint64_t default_value) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lamb::support
