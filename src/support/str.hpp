// String formatting helpers. libstdc++ 12 lacks <format>, so we provide a
// small printf-backed formatter plus join/pad utilities used by the report
// renderers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lamb::support {

/// printf-style formatting into a std::string.
template <typename... Args>
std::string strf(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  if (n <= 0) {
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

/// Join a list of strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left/right padding to a fixed width (no truncation).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Render a double with a fixed number of significant decimals, trimming to
/// something compact for tables ("1.23e-04" style for tiny magnitudes).
std::string format_double(double x, int decimals = 3);

/// Render a percentage, e.g. 0.123 -> "12.3%".
std::string format_percent(double fraction, int decimals = 1);

/// Render a count with thousands separators, e.g. 22962 -> "22,962".
std::string format_count(long long n);

}  // namespace lamb::support
