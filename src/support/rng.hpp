// Deterministic random number generation.
//
// All experiment drivers take explicit seeds and draw from lamb::support::Rng
// (xoshiro256**, seeded via splitmix64). The hash utilities provide stable
// 64-bit mixing used by the simulated machine to derive per-call measurement
// jitter that is reproducible across runs and platforms.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace lamb::support {

/// splitmix64 step; good single-shot mixer, used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a single value (Stafford's mix13 finalizer).
std::uint64_t mix64(std::uint64_t x);

/// Combine two 64-bit hashes order-dependently.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

/// FNV-1a over a string, for hashing names into jitter streams.
std::uint64_t hash_string(std::string_view s);

/// xoshiro256** PRNG. Deterministic, fast, and fully seeded from one value.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi].
  int uniform_int(int lo, int hi);

  /// Uniform 64-bit integer in [0, n) without modulo bias.
  std::uint64_t bounded(std::uint64_t n);

  /// Split off an independent child generator (stable w.r.t. parent state).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace lamb::support
