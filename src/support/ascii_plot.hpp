// Character-grid plotting: scatter plots (Figs. 6 and 9), line plots
// (Figs. 1, 8, 11) and histograms/box summaries (Figs. 7 and 10) are rendered
// directly in the terminal so the benches are self-contained.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace lamb::support {

struct PlotOptions {
  int width = 72;    ///< interior columns
  int height = 20;   ///< interior rows
  std::string x_label;
  std::string y_label;
  std::string title;
  // Axis ranges; when lo==hi the range is derived from the data.
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
};

/// Scatter plot of (x, y) points. Marker density shown as '.', 'o', '@'.
std::string scatter_plot(std::span<const double> xs,
                         std::span<const double> ys, const PlotOptions& opts);

/// Multiple named series on one canvas, each drawn with its own marker.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char marker = '*';
};

std::string line_plot(std::span<const Series> series, const PlotOptions& opts);

/// Horizontal bar histogram with bin edges printed on the left.
std::string histogram_plot(std::span<const double> values, double lo,
                           double hi, int bins, const std::string& title);

/// Box-plot style five-number summary line for a sample.
std::string five_number_summary(std::span<const double> values);

}  // namespace lamb::support
