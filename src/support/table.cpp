#include "support/table.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace lamb::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LAMB_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  LAMB_CHECK(cells.size() == headers_.size(),
             "row width does not match header");
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() {
  pending_separator_ = true;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto line_of = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += pad_right(cells[c], widths[c]);
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += line_of(headers_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.separator_before) {
      out += rule();
    }
    out += line_of(row.cells);
  }
  out += rule();
  return out;
}

}  // namespace lamb::support
