#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/statistics.hpp"
#include "support/str.hpp"

namespace lamb::support {

namespace {

struct Range {
  double lo;
  double hi;
};

Range derive_range(std::span<const double> xs, double lo, double hi) {
  if (lo != hi) {
    return {lo, hi};
  }
  if (xs.empty()) {
    return {0.0, 1.0};
  }
  double mn = min_value(xs);
  double mx = max_value(xs);
  if (mn == mx) {
    mn -= 0.5;
    mx += 0.5;
  }
  const double pad = 0.02 * (mx - mn);
  return {mn - pad, mx + pad};
}

class Canvas {
 public:
  Canvas(int width, int height)
      : width_(width), height_(height),
        cells_(static_cast<std::size_t>(width * height), ' ') {
    LAMB_CHECK(width > 0 && height > 0, "canvas must be non-empty");
  }

  void put(int col, int row, char c) {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) {
      return;
    }
    cells_[static_cast<std::size_t>(row * width_ + col)] = c;
  }

  char get(int col, int row) const {
    return cells_[static_cast<std::size_t>(row * width_ + col)];
  }

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  int width_;
  int height_;
  std::vector<char> cells_;
};

std::string frame(const Canvas& canvas, const Range& xr, const Range& yr,
                  const PlotOptions& opts, const std::string& legend) {
  std::string out;
  if (!opts.title.empty()) {
    out += opts.title + "\n";
  }
  const std::string y_hi = format_double(yr.hi, 2);
  const std::string y_lo = format_double(yr.lo, 2);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size());

  for (int r = 0; r < canvas.height(); ++r) {
    std::string label;
    if (r == 0) {
      label = y_hi;
    } else if (r == canvas.height() - 1) {
      label = y_lo;
    }
    out += pad_left(label, margin);
    out += " |";
    for (int c = 0; c < canvas.width(); ++c) {
      out += canvas.get(c, r);
    }
    out += '\n';
  }
  out += std::string(margin + 1, ' ') + '+' +
         std::string(static_cast<std::size_t>(canvas.width()), '-') + '\n';
  const std::string x_lo = format_double(xr.lo, 2);
  const std::string x_hi = format_double(xr.hi, 2);
  std::string axis = std::string(margin + 2, ' ') + x_lo;
  const std::size_t room = margin + 2 + static_cast<std::size_t>(canvas.width());
  if (axis.size() + x_hi.size() < room) {
    axis += std::string(room - axis.size() - x_hi.size(), ' ');
  } else {
    axis += ' ';
  }
  axis += x_hi;
  out += axis + '\n';
  if (!opts.x_label.empty() || !opts.y_label.empty()) {
    out += pad_left("", margin + 2) + opts.x_label;
    if (!opts.y_label.empty()) {
      out += "   (y: " + opts.y_label + ")";
    }
    out += '\n';
  }
  if (!legend.empty()) {
    out += legend + '\n';
  }
  return out;
}

}  // namespace

std::string scatter_plot(std::span<const double> xs,
                         std::span<const double> ys, const PlotOptions& opts) {
  LAMB_CHECK(xs.size() == ys.size(), "scatter: length mismatch");
  const Range xr = derive_range(xs, opts.x_min, opts.x_max);
  const Range yr = derive_range(ys, opts.y_min, opts.y_max);
  Canvas canvas(opts.width, opts.height);
  std::vector<int> density(
      static_cast<std::size_t>(opts.width * opts.height), 0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fx = (xs[i] - xr.lo) / (xr.hi - xr.lo);
    const double fy = (ys[i] - yr.lo) / (yr.hi - yr.lo);
    const int col = std::clamp(static_cast<int>(fx * (opts.width - 1)), 0,
                               opts.width - 1);
    const int row = std::clamp(
        opts.height - 1 - static_cast<int>(fy * (opts.height - 1)), 0,
        opts.height - 1);
    ++density[static_cast<std::size_t>(row * opts.width + col)];
  }
  for (int r = 0; r < opts.height; ++r) {
    for (int c = 0; c < opts.width; ++c) {
      const int d = density[static_cast<std::size_t>(r * opts.width + c)];
      if (d == 0) {
        continue;
      }
      canvas.put(c, r, d == 1 ? '.' : (d <= 3 ? 'o' : '@'));
    }
  }
  return frame(canvas, xr, yr, opts, "");
}

std::string line_plot(std::span<const Series> series,
                      const PlotOptions& opts) {
  std::vector<double> all_x;
  std::vector<double> all_y;
  for (const auto& s : series) {
    all_x.insert(all_x.end(), s.xs.begin(), s.xs.end());
    all_y.insert(all_y.end(), s.ys.begin(), s.ys.end());
  }
  const Range xr = derive_range(all_x, opts.x_min, opts.x_max);
  const Range yr = derive_range(all_y, opts.y_min, opts.y_max);
  Canvas canvas(opts.width, opts.height);

  for (const auto& s : series) {
    LAMB_CHECK(s.xs.size() == s.ys.size(), "line plot: length mismatch");
    // Draw with simple linear interpolation between consecutive samples so
    // the curves read as lines even at terminal resolution.
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const int steps = std::max(2, opts.width / 4);
      for (int t = 0; t <= steps; ++t) {
        const double a = static_cast<double>(t) / steps;
        const double x = s.xs[i] * (1.0 - a) + s.xs[i + 1] * a;
        const double y = s.ys[i] * (1.0 - a) + s.ys[i + 1] * a;
        const double fx = (x - xr.lo) / (xr.hi - xr.lo);
        const double fy = (y - yr.lo) / (yr.hi - yr.lo);
        const int col = std::clamp(static_cast<int>(fx * (opts.width - 1)), 0,
                                   opts.width - 1);
        const int row = std::clamp(
            opts.height - 1 - static_cast<int>(fy * (opts.height - 1)), 0,
            opts.height - 1);
        canvas.put(col, row, s.marker);
      }
    }
    if (s.xs.size() == 1) {
      const double fx = (s.xs[0] - xr.lo) / (xr.hi - xr.lo);
      const double fy = (s.ys[0] - yr.lo) / (yr.hi - yr.lo);
      canvas.put(static_cast<int>(fx * (opts.width - 1)),
                 opts.height - 1 - static_cast<int>(fy * (opts.height - 1)),
                 s.marker);
    }
  }

  std::vector<std::string> legend_parts;
  for (const auto& s : series) {
    legend_parts.push_back(strf("%c = %s", s.marker, s.name.c_str()));
  }
  return frame(canvas, xr, yr, opts, "  legend: " + join(legend_parts, ", "));
}

std::string histogram_plot(std::span<const double> values, double lo,
                           double hi, int bins, const std::string& title) {
  const Histogram h =
      make_histogram(values, lo, hi, static_cast<std::size_t>(bins));
  std::size_t max_count = 1;
  for (std::size_t c : h.counts) {
    max_count = std::max(max_count, c);
  }
  std::string out;
  if (!title.empty()) {
    out += title + "\n";
  }
  const double width = (hi - lo) / bins;
  for (int b = 0; b < bins; ++b) {
    const double bin_lo = lo + b * width;
    const double bin_hi = bin_lo + width;
    const std::size_t count = h.counts[static_cast<std::size_t>(b)];
    const int bar = static_cast<int>(
        std::lround(48.0 * static_cast<double>(count) /
                    static_cast<double>(max_count)));
    out += strf("[%8.1f, %8.1f) |%-48s| %zu\n", bin_lo, bin_hi,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                count);
  }
  return out;
}

std::string five_number_summary(std::span<const double> values) {
  if (values.empty()) {
    return "(empty sample)";
  }
  return strf("min=%s q25=%s med=%s q75=%s max=%s",
              format_double(quantile(values, 0.0), 1).c_str(),
              format_double(quantile(values, 0.25), 1).c_str(),
              format_double(quantile(values, 0.5), 1).c_str(),
              format_double(quantile(values, 0.75), 1).c_str(),
              format_double(quantile(values, 1.0), 1).c_str());
}

}  // namespace lamb::support
