// Fixed-size thread pool with a blocking parallel_for.
//
// The paper's testbed ran one pinned thread per physical core. This pool
// mirrors that model: N long-lived workers, work handed out as contiguous
// index ranges (one range per worker — the granularity that matters for
// cache-blocked level-3 kernels), and the caller participates in the work so
// a pool of size 1 degrades to plain serial execution with no synchronisation
// overhead on the hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lamb::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers; `threads == 1` creates no OS threads at all.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(begin, end) over [0, n) split into contiguous chunks, one chunk
  /// per participant (workers + caller). Blocks until all chunks finish.
  /// Exceptions from fn propagate to the caller (first one wins).
  /// Safe to call from multiple threads: concurrent calls are serialised
  /// behind a dispatch mutex (one loop runs at a time, later callers
  /// block). Do not call parallel_for from inside fn — that deadlocks.
  void parallel_for(std::ptrdiff_t n,
                    const std::function<void(std::ptrdiff_t, std::ptrdiff_t)>&
                        fn);

  /// Default pool sized to the hardware (lazily constructed, never destroyed
  /// before exit). Intended for kernels; experiments pass pools explicitly.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::ptrdiff_t, std::ptrdiff_t)>* fn = nullptr;
    std::ptrdiff_t begin = 0;
    std::ptrdiff_t end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  /// Serialises whole parallel_for invocations: the task slots, generation
  /// counter and pending count below describe ONE loop at a time, so a
  /// second concurrent caller must not start handing out chunks while the
  /// first is still collecting (the serving layer's query_batch dispatches
  /// builds from many threads at once).
  std::mutex dispatch_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;          // one slot per worker
  std::size_t generation_ = 0;       // bumped per parallel_for call
  std::size_t pending_ = 0;          // workers still running this generation
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace lamb::parallel
