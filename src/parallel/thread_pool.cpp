#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lamb::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  LAMB_CHECK(threads >= 1, "pool needs at least one participant");
  tasks_.resize(threads - 1);
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::parallel_for(
    std::ptrdiff_t n,
    const std::function<void(std::ptrdiff_t, std::ptrdiff_t)>& fn) {
  LAMB_CHECK(n >= 0, "parallel_for: negative range");
  if (n == 0) {
    return;
  }
  const auto participants = static_cast<std::ptrdiff_t>(size());
  if (participants == 1 || n == 1) {
    fn(0, n);  // no shared state touched: no need to serialise
    return;
  }
  // One loop at a time: the task slots and completion count are
  // per-invocation state, and concurrent dispatches would clobber them
  // (losing chunks for one caller, running others twice).
  const std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);

  const std::ptrdiff_t chunk = (n + participants - 1) / participants;
  std::ptrdiff_t caller_begin = 0;
  std::ptrdiff_t caller_end = std::min(chunk, n);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = 0;
    first_error_ = nullptr;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::ptrdiff_t begin =
          std::min(n, chunk * static_cast<std::ptrdiff_t>(w + 1));
      const std::ptrdiff_t end =
          std::min(n, chunk * static_cast<std::ptrdiff_t>(w + 2));
      tasks_[w] = Task{begin < end ? &fn : nullptr, begin, end};
      if (tasks_[w].fn != nullptr) {
        ++pending_;
      }
    }
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    fn(caller_begin, caller_end);
  } catch (...) {
    caller_error = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    if (caller_error == nullptr) {
      caller_error = first_error_;
    }
  }
  if (caller_error != nullptr) {
    std::rethrow_exception(caller_error);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation &&
                         tasks_[worker_index].fn != nullptr);
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      task = tasks_[worker_index];
      // Clear the slot so a spurious wakeup in a later generation with no
      // work for this worker does not re-run a stale task.
      tasks_[worker_index].fn = nullptr;
    }
    std::exception_ptr error;
    try {
      (*task.fn)(task.begin, task.end);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      --pending_;
      if (pending_ == 0) {
        cv_done_.notify_one();
      }
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace lamb::parallel
