// Host introspection: core count, cache sizes, and an empirical estimate of
// peak double-precision FLOP rate (used to express measured kernel rates as
// efficiencies, the y-axis of the paper's Figures 1, 8 and 11).
#pragma once

#include <cstddef>
#include <string>

#include "parallel/thread_pool.hpp"

namespace lamb::perf {

struct MachineInfo {
  unsigned logical_cores = 1;
  std::size_t l1_bytes = 32u << 10;
  std::size_t l2_bytes = 1u << 20;
  std::size_t llc_bytes = 8u << 20;

  std::string to_string() const;
};

/// Query the host (sysconf where available; conservative fallbacks).
MachineInfo query_machine_info();

/// Empirical peak estimate: the best GEMM rate observed over a few
/// cache-friendly sizes, in FLOP/s. This is the denominator for measured
/// efficiencies; by construction the best kernel approaches efficiency 1.
double estimate_peak_flops(parallel::ThreadPool* pool = nullptr);

}  // namespace lamb::perf
