// Wall-clock timing based on std::chrono::steady_clock.
#pragma once

#include <chrono>

namespace lamb::perf {

/// Seconds since an arbitrary epoch; monotonic.
inline double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

/// Measures elapsed seconds between construction and elapsed().
class Timer {
 public:
  Timer() : start_(now_seconds()) {}
  void reset() { start_ = now_seconds(); }
  double elapsed() const { return now_seconds() - start_; }

 private:
  double start_;
};

}  // namespace lamb::perf
