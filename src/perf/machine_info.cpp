#include "perf/machine_info.hpp"

#include <unistd.h>

#include <algorithm>
#include <thread>

#include "blas/gemm.hpp"
#include "la/generators.hpp"
#include "perf/timer.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace lamb::perf {

namespace {

std::size_t sysconf_or(long name, std::size_t fallback) {
#ifdef _SC_LEVEL1_DCACHE_SIZE
  const long v = ::sysconf(static_cast<int>(name));
  if (v > 0) {
    return static_cast<std::size_t>(v);
  }
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

std::string MachineInfo::to_string() const {
  return support::strf(
      "cores=%u L1=%zuKiB L2=%zuKiB LLC=%zuMiB", logical_cores,
      l1_bytes >> 10, l2_bytes >> 10, llc_bytes >> 20);
}

MachineInfo query_machine_info() {
  MachineInfo info;
  info.logical_cores = std::max(1u, std::thread::hardware_concurrency());
#ifdef _SC_LEVEL1_DCACHE_SIZE
  info.l1_bytes = sysconf_or(_SC_LEVEL1_DCACHE_SIZE, info.l1_bytes);
  info.l2_bytes = sysconf_or(_SC_LEVEL2_CACHE_SIZE, info.l2_bytes);
  info.llc_bytes = sysconf_or(_SC_LEVEL3_CACHE_SIZE, info.llc_bytes);
  if (info.llc_bytes == 0) {
    info.llc_bytes = std::max<std::size_t>(info.l2_bytes, 8u << 20);
  }
#endif
  return info;
}

double estimate_peak_flops(parallel::ThreadPool* pool) {
  support::Rng rng(42);
  double best = 0.0;
  for (const la::index_t n : {192, 256, 320}) {
    la::Matrix a = la::random_matrix(n, n, rng);
    la::Matrix b = la::random_matrix(n, n, rng);
    la::Matrix c(n, n);
    blas::GemmOptions opts;
    opts.pool = pool;
    // Warm up once, then take the best of three timed runs.
    blas::matmul(a.view(), b.view(), c.view(), opts);
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      blas::matmul(a.view(), b.view(), c.view(), opts);
      const double dt = t.elapsed();
      const double flops = 2.0 * static_cast<double>(n) *
                           static_cast<double>(n) * static_cast<double>(n);
      best = std::max(best, flops / dt);
    }
  }
  return best;
}

}  // namespace lamb::perf
