#include "perf/measurement.hpp"

#include "perf/timer.hpp"
#include "support/check.hpp"
#include "support/statistics.hpp"

namespace lamb::perf {

MeasurementResult measure(const std::function<void()>& work,
                          const MeasurementConfig& config,
                          CacheFlusher& flusher) {
  LAMB_CHECK(config.repetitions >= 1, "need at least one repetition");
  MeasurementResult result;
  result.samples.reserve(static_cast<std::size_t>(config.repetitions));
  for (int r = 0; r < config.repetitions; ++r) {
    if (config.flush_cache) {
      flusher.flush();
    }
    Timer t;
    work();
    result.samples.push_back(t.elapsed());
  }
  result.median_seconds = support::median(result.samples);
  result.min_seconds = support::min_value(result.samples);
  result.max_seconds = support::max_value(result.samples);
  return result;
}

SteppedMeasurementResult measure_steps(
    const std::vector<std::function<void()>>& steps,
    const MeasurementConfig& config, CacheFlusher& flusher) {
  LAMB_CHECK(config.repetitions >= 1, "need at least one repetition");
  LAMB_CHECK(!steps.empty(), "need at least one step");
  const std::size_t num_steps = steps.size();
  std::vector<std::vector<double>> per_step(num_steps);
  std::vector<double> totals;
  for (int r = 0; r < config.repetitions; ++r) {
    if (config.flush_cache) {
      flusher.flush();
    }
    double total = 0.0;
    for (std::size_t s = 0; s < num_steps; ++s) {
      Timer t;
      steps[s]();
      const double dt = t.elapsed();
      per_step[s].push_back(dt);
      total += dt;
    }
    totals.push_back(total);
  }
  SteppedMeasurementResult result;
  result.median_step_seconds.reserve(num_steps);
  for (const auto& samples : per_step) {
    result.median_step_seconds.push_back(support::median(samples));
  }
  result.median_total_seconds = support::median(totals);
  return result;
}

}  // namespace lamb::perf
