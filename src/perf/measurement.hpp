// The measurement protocol of the paper (Sec. 3.4): each test is repeated R
// times (paper: 10), the cache is flushed prior to each repetition, and the
// median is recorded as the execution time.
#pragma once

#include <functional>
#include <vector>

#include "perf/cache_flush.hpp"

namespace lamb::perf {

struct MeasurementConfig {
  int repetitions = 10;
  bool flush_cache = true;
};

struct MeasurementResult {
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::vector<double> samples;  ///< per-repetition wall times
};

/// Time `work()` under the protocol. `flusher` may be shared across calls.
MeasurementResult measure(const std::function<void()>& work,
                          const MeasurementConfig& config,
                          CacheFlusher& flusher);

/// Time a multi-step work item, recording per-step times for each repetition.
/// `steps[i]` runs step i; the cache is flushed before each *repetition*
/// (not between steps — inter-kernel cache effects are part of the signal).
struct SteppedMeasurementResult {
  std::vector<double> median_step_seconds;  ///< one entry per step
  double median_total_seconds = 0.0;
};

SteppedMeasurementResult measure_steps(
    const std::vector<std::function<void()>>& steps,
    const MeasurementConfig& config, CacheFlusher& flusher);

}  // namespace lamb::perf
