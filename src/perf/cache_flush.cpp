#include "perf/cache_flush.hpp"

namespace lamb::perf {

CacheFlusher::CacheFlusher(std::size_t bytes)
    : buffer_(bytes / sizeof(double), 1.0) {}

void CacheFlusher::flush() {
  // Stride of one cache line (8 doubles); read-modify-write dirties the line
  // so it must be written back, evicting whatever the kernel left behind.
  double acc = 0.0;
  for (std::size_t i = 0; i < buffer_.size(); i += 8) {
    buffer_[i] += 1.0;
    acc += buffer_[i];
  }
  sink_ = acc;
}

}  // namespace lamb::perf
