// Cache flushing between timed repetitions.
//
// The paper eliminates inter-repetition cache effects by flushing the cache
// prior to each repetition (Sec. 3.4). We do the same by streaming through a
// buffer larger than the last-level cache, touching every cache line with a
// read-modify-write so both clean and dirty lines are evicted.
#pragma once

#include <cstddef>
#include <vector>

namespace lamb::perf {

class CacheFlusher {
 public:
  /// `bytes` should comfortably exceed the LLC; default 64 MiB.
  explicit CacheFlusher(std::size_t bytes = 64u << 20);

  /// Evict cached data by streaming through the buffer.
  void flush();

  /// Checksum accumulated by flushes; returning it prevents the compiler
  /// from eliding the traversal.
  double sink() const { return sink_; }

  std::size_t bytes() const { return buffer_.size() * sizeof(double); }

 private:
  std::vector<double> buffer_;
  double sink_ = 0.0;
};

}  // namespace lamb::perf
