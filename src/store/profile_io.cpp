#include "store/profile_io.hpp"

#include "support/check.hpp"

namespace lamb::store {

void write_profile(ByteWriter& w, const model::GriddedProfile& profile) {
  w.u32(static_cast<std::uint32_t>(profile.dimension_count()));
  for (const std::vector<double>& axis : profile.axes()) {
    w.vec_f64(axis);
  }
  w.vec_f64(profile.values());
}

model::GriddedProfile read_profile(ByteReader& r) {
  const std::uint32_t dims = r.u32();
  if (dims == 0 || dims > 8) {
    throw SerialError("corrupt profile record: implausible axis count");
  }
  std::vector<std::vector<double>> axes;
  axes.reserve(dims);
  for (std::uint32_t d = 0; d < dims; ++d) {
    axes.push_back(r.vec_f64());
  }
  std::vector<double> values = r.vec_f64();
  try {
    return model::GriddedProfile(std::move(axes), std::move(values));
  } catch (const support::CheckError& e) {
    throw SerialError(std::string("corrupt profile record: ") + e.what());
  }
}

void write_profile_set(ByteWriter& w, const ProfileSetRecord& record) {
  w.str(record.machine);
  write_profile(w, record.profiles.gemm());
  write_profile(w, record.profiles.syrk());
  write_profile(w, record.profiles.symm());
  write_profile(w, record.profiles.tricopy());
}

ProfileSetRecord read_profile_set(ByteReader& r) {
  std::string machine = r.str();
  model::GriddedProfile gemm = read_profile(r);
  model::GriddedProfile syrk = read_profile(r);
  model::GriddedProfile symm = read_profile(r);
  model::GriddedProfile tricopy = read_profile(r);
  try {
    return ProfileSetRecord{
        std::move(machine),
        model::KernelProfileSet(std::move(gemm), std::move(syrk),
                                std::move(symm), std::move(tricopy))};
  } catch (const support::CheckError& e) {
    throw SerialError(std::string("corrupt profile record: ") + e.what());
  }
}

void save_profile_set(const std::string& path,
                      const ProfileSetRecord& record) {
  ByteWriter w;
  write_profile_set(w, record);
  write_file(path, kKindProfile, kProfileFormatVersion, w.bytes());
}

ProfileSetRecord load_profile_set(const std::string& path) {
  const std::string payload =
      read_file(path, kKindProfile, kProfileFormatVersion);
  ByteReader r(payload);
  ProfileSetRecord record = read_profile_set(r);
  r.expect_end();
  return record;
}

void save_drift_baseline(const std::string& path,
                         const BaselineRecord& record) {
  ByteWriter w;
  w.str(record.machine);
  write_profile(w, record.profile);
  write_file(path, kKindDriftBaseline, kProfileFormatVersion, w.bytes());
}

BaselineRecord load_drift_baseline(const std::string& path) {
  const std::string payload =
      read_file(path, kKindDriftBaseline, kProfileFormatVersion);
  ByteReader r(payload);
  std::string machine = r.str();
  model::GriddedProfile profile = read_profile(r);
  r.expect_end();
  return BaselineRecord{std::move(machine), std::move(profile)};
}

}  // namespace lamb::store
