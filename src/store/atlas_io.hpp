// RegionAtlas persistence: exact round-trip of an atlas (base instance,
// symbolic dimension, scan config, intervals, sample count) together with
// the family and machine-model names it was built against — enough for a
// reader to refuse an atlas that does not match its own configuration.
#pragma once

#include <string>

#include "anomaly/atlas.hpp"
#include "store/serial.hpp"

namespace lamb::store {

inline constexpr std::uint32_t kAtlasFormatVersion = 1;

/// An atlas plus the provenance needed to validate a lookup against it.
struct AtlasRecord {
  std::string family;
  std::string machine;
  anomaly::RegionAtlas atlas;
};

void write_atlas(ByteWriter& w, const AtlasRecord& record);
/// Throws SerialError on malformed input (including interval sets that do
/// not partition the config range — validated by the RegionAtlas ctor).
AtlasRecord read_atlas(ByteReader& r);

/// Framed-file convenience wrappers (kind kKindAtlas).
void save_atlas(const std::string& path, const AtlasRecord& record);
AtlasRecord load_atlas(const std::string& path);

}  // namespace lamb::store
