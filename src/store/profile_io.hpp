// Performance-profile persistence: exact round-trip of GriddedProfile grids
// and the four-kernel KernelProfileSet, so a machine's isolated-call
// benchmarks (minutes of measurement on real hardware) are paid once and
// reused across processes.
#pragma once

#include <string>

#include "model/perf_profile.hpp"
#include "store/serial.hpp"

namespace lamb::store {

inline constexpr std::uint32_t kProfileFormatVersion = 1;

void write_profile(ByteWriter& w, const model::GriddedProfile& profile);
model::GriddedProfile read_profile(ByteReader& r);

/// A profile set plus the machine-model name it was benchmarked on.
struct ProfileSetRecord {
  std::string machine;
  model::KernelProfileSet profiles;
};

void write_profile_set(ByteWriter& w, const ProfileSetRecord& record);
ProfileSetRecord read_profile_set(ByteReader& r);

/// Framed-file convenience wrappers (kind kKindProfile).
void save_profile_set(const std::string& path, const ProfileSetRecord& record);
ProfileSetRecord load_profile_set(const std::string& path);

/// A single profile plus the machine it was measured on — the drift
/// monitor's persisted baseline (serve/drift.hpp), so a restarted service
/// detects drift against the timings its atlases were actually built with.
struct BaselineRecord {
  std::string machine;
  model::GriddedProfile profile;
};

/// Framed-file wrappers (kind kKindDriftBaseline; crash-safe like every
/// store write).
void save_drift_baseline(const std::string& path,
                         const BaselineRecord& record);
BaselineRecord load_drift_baseline(const std::string& path);

}  // namespace lamb::store
