// Versioned binary serialization: the byte-level layer under atlas_io /
// profile_io.
//
// Every multi-byte value is explicit little-endian (support/endian.hpp), so
// files are portable across hosts. A framed file is
//
//   "LAMB" | record kind (u32) | format version (u32) |
//   payload size (u64) | FNV-1a64 payload checksum (u64) | payload
//
// and read_file() rejects wrong magic, wrong kind, unknown versions,
// truncation and checksum mismatches with SerialError — a corrupt or foreign
// file can never come back as a half-parsed object. ByteReader bounds-checks
// every primitive read for the same reason.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lamb::store {

/// Thrown on any malformed, truncated, corrupt or version-mismatched input.
class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  /// Length-prefixed (u32) raw bytes; embedded NULs round-trip.
  void str(std::string_view s);
  /// Length-prefixed (u32) element sequences.
  void vec_i32(const std::vector<int>& v);
  void vec_f64(const std::vector<double>& v);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian decoder over a byte range; every read past
/// the end throws SerialError("truncated ...").
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  std::vector<int> vec_i32();
  std::vector<double> vec_f64();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }
  /// Throws SerialError when trailing bytes remain (record must be consumed
  /// exactly).
  void expect_end() const;

 private:
  const unsigned char* need(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Record kinds for the framed-file header.
inline constexpr std::uint32_t kKindAtlas = 0x41544C53;    // "ATLS"
inline constexpr std::uint32_t kKindProfile = 0x50524F46;  // "PROF"
inline constexpr std::uint32_t kKindDriftBaseline = 0x44524654;  // "DRFT"

/// Write a framed file (magic + kind + version + size + checksum + payload);
/// throws SerialError on I/O failure. The write is crash-safe: the record is
/// staged in a writer-unique "<path>.<pid>.<n>.tmp" sibling, fsynced, and
/// atomically renamed into place, so the destination always holds either
/// the old complete frame or the new one, never a truncated mix — even
/// under concurrent writers of the same destination.
void write_file(const std::string& path, std::uint32_t kind,
                std::uint32_t version, std::string_view payload);

/// Read and validate a framed file; returns the payload. `expected_version`
/// is the newest version the caller understands — older or newer versions
/// are rejected (the format carries no migration story yet, by design).
std::string read_file(const std::string& path, std::uint32_t kind,
                      std::uint32_t expected_version);

/// Move a corrupt file aside as "<path>.corrupt" (numbered when that name is
/// taken) and append a "<name>\t<reason>" line to quarantine.journal in the
/// same directory, so bad bytes are preserved for forensics instead of being
/// silently skipped or re-read forever. Throws SerialError when the rename
/// itself fails.
void quarantine_file(const std::string& path, const std::string& reason);

}  // namespace lamb::store
