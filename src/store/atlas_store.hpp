// AtlasStore: a directory of framed atlas files, keyed by the full identity
// of a scan — (family, machine, symbolic dimension, base instance, scan
// config). This is the persistent knowledge base the serving layer warms
// from and checkpoints to, and what lets benches reuse atlases across runs
// (--atlas-dir).
//
// File names are the FNV-1a64 hash of the key's canonical string
// ("<hex>.atlas"); on load the stored identity is re-derived and compared to
// the requested key, so a hash collision or a foreign file surfaces as a
// SerialError instead of a silently wrong answer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "store/atlas_io.hpp"

namespace lamb::store {

struct AtlasKey {
  std::string family;
  std::string machine;
  int dim = 0;
  /// Base instance; the coordinate at `dim` is ignored (canonicalised to 0),
  /// so every query along the same slice shares one atlas.
  expr::Instance base;
  anomaly::AtlasConfig config;

  /// Canonical identity string (also the serving cache's atlas key).
  std::string canonical() const;

  /// Key of an existing record (for collision checks on load).
  static AtlasKey of(const AtlasRecord& record);
};

class AtlasStore {
 public:
  /// Opens (creating if missing) the store directory.
  explicit AtlasStore(std::string dir);

  const std::string& dir() const { return dir_; }

  std::string path_for(const AtlasKey& key) const;
  bool contains(const AtlasKey& key) const;

  /// Persist an atlas under `key`; overwrites any previous record.
  void save(const AtlasKey& key, const anomaly::RegionAtlas& atlas) const;

  /// Load the atlas for `key`; std::nullopt when absent. Throws SerialError
  /// when the file exists but is corrupt or stores a different key.
  std::optional<anomaly::RegionAtlas> load(const AtlasKey& key) const;

  /// Paths of every ".atlas" file in the store, sorted.
  std::vector<std::string> list() const;

  std::size_t size() const { return list().size(); }

 private:
  std::string dir_;
};

}  // namespace lamb::store
