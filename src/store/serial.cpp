#include "store/serial.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <limits>

#include "support/endian.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace lamb::store {

namespace {

constexpr char kMagic[4] = {'L', 'A', 'M', 'B'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;

}  // namespace

// ------------------------------------------------------------------ writer

void ByteWriter::u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
void ByteWriter::u32(std::uint32_t v) { support::append_le32(bytes_, v); }
void ByteWriter::u64(std::uint64_t v) { support::append_le64(bytes_, v); }
void ByteWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void ByteWriter::f64(double v) { support::append_f64(bytes_, v); }
void ByteWriter::boolean(bool v) { u8(v ? 1 : 0); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

void ByteWriter::vec_i32(const std::vector<int>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) {
    i32(x);
  }
}

void ByteWriter::vec_f64(const std::vector<double>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) {
    f64(x);
  }
}

// ------------------------------------------------------------------ reader

const unsigned char* ByteReader::need(std::size_t n) {
  if (bytes_.size() - pos_ < n) {
    throw SerialError(support::strf(
        "truncated record: need %zu bytes at offset %zu of %zu", n, pos_,
        bytes_.size()));
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() { return *need(1); }
std::uint32_t ByteReader::u32() { return support::load_le32(need(4)); }
std::uint64_t ByteReader::u64() { return support::load_le64(need(8)); }
std::int32_t ByteReader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }
double ByteReader::f64() { return support::load_f64(need(8)); }

bool ByteReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw SerialError(support::strf("corrupt boolean byte 0x%02X", v));
  }
  return v == 1;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  const auto* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<int> ByteReader::vec_i32() {
  const std::uint32_t n = u32();
  if (remaining() / 4 < n) {
    throw SerialError("truncated record: i32 vector length exceeds payload");
  }
  std::vector<int> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(i32());
  }
  return out;
}

std::vector<double> ByteReader::vec_f64() {
  const std::uint32_t n = u32();
  if (remaining() / 8 < n) {
    throw SerialError("truncated record: f64 vector length exceeds payload");
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(f64());
  }
  return out;
}

void ByteReader::expect_end() const {
  if (!at_end()) {
    throw SerialError(support::strf(
        "corrupt record: %zu trailing bytes after the payload", remaining()));
  }
}

// ------------------------------------------------------------- framed files

void write_file(const std::string& path, std::uint32_t kind,
                std::uint32_t version, std::string_view payload) {
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  support::append_le32(header, kind);
  support::append_le32(header, version);
  support::append_le64(header, payload.size());
  support::append_le64(header, support::fnv1a64(payload));

  // Crash-safe replace: stage the full record in a sibling temp file,
  // fsync it, then rename over the destination. The fsync matters — without
  // it a power loss can commit the rename before the data blocks, leaving a
  // zero-length frame under the real name. A crash mid-write leaves at
  // worst a stale ".tmp" next to an intact old file (readers skip / reject
  // the temp name by extension). The staging name is unique per writer
  // (pid + counter): concurrent checkpoints of the same key must not
  // interleave into one staging file and publish a mixed frame.
  static std::atomic<std::uint64_t> stage_counter{0};
  const std::string tmp = path +
                          support::strf(".%ld.%llu.tmp",
                                        static_cast<long>(::getpid()),
                                        static_cast<unsigned long long>(
                                            stage_counter.fetch_add(1)));
  const auto fail = [&tmp](const std::string& what) -> SerialError {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return SerialError(what);
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw SerialError("cannot open for writing: " + tmp);
  }
  const auto write_all = [fd](std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  };
  if (!write_all(header) || !write_all(payload) || ::fsync(fd) != 0) {
    ::close(fd);
    throw fail("write failed: " + tmp);
  }
  if (::close(fd) != 0) {
    throw fail("close failed: " + tmp);
  }
  if (support::fault_fire(support::FaultSite::kStoreWrite)) {
    // Model a crash between staging and publish: the staged .tmp survives,
    // the destination is untouched. fsck cleans the orphan up.
    throw SerialError("fault injected: store.write before rename: " + path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw fail("cannot replace " + path + ": " + ec.message());
  }
  // The rename itself must also reach disk: without a directory fsync a
  // power loss can roll the directory entry back to the old file (or to
  // nothing, for a first checkpoint) even though the data blocks made it.
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int dirfd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);  // best-effort: some filesystems reject directory fsync
    ::close(dirfd);
  }
}

void quarantine_file(const std::string& path, const std::string& reason) {
  const std::filesystem::path src(path);
  std::filesystem::path dst = src;
  dst += ".corrupt";
  std::error_code ec;
  for (int n = 1; std::filesystem::exists(dst, ec) && n < 100; ++n) {
    dst = src;
    dst += support::strf(".%d.corrupt", n);
  }
  std::filesystem::rename(src, dst, ec);
  if (ec) {
    throw SerialError("cannot quarantine " + path + ": " + ec.message());
  }
  const std::filesystem::path journal =
      src.parent_path() / "quarantine.journal";
  std::ofstream out(journal, std::ios::app);
  if (out) {
    out << dst.filename().string() << '\t' << reason << '\n';
  }
}

std::string read_file(const std::string& path, std::uint32_t kind,
                      std::uint32_t expected_version) {
  if (support::fault_fire(support::FaultSite::kStoreRead)) {
    throw SerialError("fault injected: store.read: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerialError("cannot open for reading: " + path);
  }
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (raw.size() < kHeaderBytes) {
    throw SerialError("truncated header: " + path);
  }
  const auto* p = reinterpret_cast<const unsigned char*>(raw.data());
  if (raw.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    throw SerialError("bad magic (not a lamb store file): " + path);
  }
  const std::uint32_t got_kind = support::load_le32(p + 4);
  if (got_kind != kind) {
    throw SerialError(support::strf(
        "record kind mismatch in %s: got 0x%08X, want 0x%08X", path.c_str(),
        got_kind, kind));
  }
  const std::uint32_t got_version = support::load_le32(p + 8);
  if (got_version != expected_version) {
    throw SerialError(support::strf(
        "unsupported format version %u in %s (this build reads %u)",
        got_version, path.c_str(), expected_version));
  }
  const std::uint64_t payload_size = support::load_le64(p + 12);
  if (payload_size != raw.size() - kHeaderBytes) {
    throw SerialError("truncated payload: " + path);
  }
  const std::uint64_t checksum = support::load_le64(p + 20);
  const std::string_view payload(raw.data() + kHeaderBytes,
                                 static_cast<std::size_t>(payload_size));
  if (support::fnv1a64(payload) != checksum) {
    throw SerialError("checksum mismatch (corrupt file): " + path);
  }
  return std::string(payload);
}

}  // namespace lamb::store
