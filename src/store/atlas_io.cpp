#include "store/atlas_io.hpp"

#include <limits>

#include "support/check.hpp"

namespace lamb::store {

void write_atlas(ByteWriter& w, const AtlasRecord& record) {
  const anomaly::RegionAtlas& atlas = record.atlas;
  w.str(record.family);
  w.str(record.machine);
  w.i32(atlas.symbolic_dimension());
  w.vec_i32(atlas.base_instance());
  w.i32(atlas.config().lo);
  w.i32(atlas.config().hi);
  w.i32(atlas.config().coarse_step);
  w.f64(atlas.config().time_score_threshold);
  w.i64(atlas.samples_used());
  w.u32(static_cast<std::uint32_t>(atlas.intervals().size()));
  for (const anomaly::AtlasInterval& interval : atlas) {
    w.i32(interval.lo);
    w.i32(interval.hi);
    w.boolean(interval.anomalous);
    w.u64(interval.recommended);
    w.u64(interval.flop_minimal);
    w.f64(interval.worst_time_score);
  }
}

AtlasRecord read_atlas(ByteReader& r) {
  std::string family = r.str();
  std::string machine = r.str();
  const int dim = r.i32();
  expr::Instance base = r.vec_i32();
  anomaly::AtlasConfig config;
  config.lo = r.i32();
  config.hi = r.i32();
  config.coarse_step = r.i32();
  config.time_score_threshold = r.f64();
  const long long samples = r.i64();
  const std::uint32_t count = r.u32();
  // 33 payload bytes per interval: reject counts the payload cannot hold
  // before reserving (a corrupt count must not turn into bad_alloc).
  if (r.remaining() / 33 < count) {
    throw SerialError("truncated record: interval count exceeds payload");
  }
  std::vector<anomaly::AtlasInterval> intervals;
  intervals.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    anomaly::AtlasInterval interval;
    interval.lo = r.i32();
    interval.hi = r.i32();
    interval.anomalous = r.boolean();
    interval.recommended = static_cast<std::size_t>(r.u64());
    interval.flop_minimal = static_cast<std::size_t>(r.u64());
    interval.worst_time_score = r.f64();
    intervals.push_back(interval);
  }
  try {
    return AtlasRecord{std::move(family), std::move(machine),
                       anomaly::RegionAtlas(std::move(base), dim, config,
                                            std::move(intervals), samples)};
  } catch (const support::CheckError& e) {
    // The RegionAtlas ctor enforces the partition invariants; surface a
    // violation as a serialization error, not a programming error.
    throw SerialError(std::string("corrupt atlas record: ") + e.what());
  }
}

void save_atlas(const std::string& path, const AtlasRecord& record) {
  ByteWriter w;
  write_atlas(w, record);
  write_file(path, kKindAtlas, kAtlasFormatVersion, w.bytes());
}

AtlasRecord load_atlas(const std::string& path) {
  const std::string payload = read_file(path, kKindAtlas, kAtlasFormatVersion);
  ByteReader r(payload);
  AtlasRecord record = read_atlas(r);
  r.expect_end();
  return record;
}

}  // namespace lamb::store
