#include "store/atlas_store.hpp"

#include <algorithm>
#include <filesystem>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace lamb::store {

std::string AtlasKey::canonical() const {
  std::string out = family + "|" + machine + "|" + support::strf("%d", dim);
  out += "|";
  for (std::size_t i = 0; i < base.size(); ++i) {
    const int coord = static_cast<int>(i) == dim ? 0 : base[i];
    out += support::strf("%s%d", i > 0 ? "," : "", coord);
  }
  out += support::strf("|%d:%d:%d:%.17g", config.lo, config.hi,
                       config.coarse_step, config.time_score_threshold);
  return out;
}

AtlasKey AtlasKey::of(const AtlasRecord& record) {
  return AtlasKey{record.family, record.machine,
                  record.atlas.symbolic_dimension(),
                  record.atlas.base_instance(), record.atlas.config()};
}

AtlasStore::AtlasStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw SerialError("cannot create atlas store directory: " + dir_);
  }
}

std::string AtlasStore::path_for(const AtlasKey& key) const {
  return dir_ + support::strf("/%016llx.atlas",
                              static_cast<unsigned long long>(
                                  support::fnv1a64(key.canonical())));
}

bool AtlasStore::contains(const AtlasKey& key) const {
  return std::filesystem::exists(path_for(key));
}

void AtlasStore::save(const AtlasKey& key,
                      const anomaly::RegionAtlas& atlas) const {
  save_atlas(path_for(key), AtlasRecord{key.family, key.machine, atlas});
}

std::optional<anomaly::RegionAtlas> AtlasStore::load(
    const AtlasKey& key) const {
  const std::string path = path_for(key);
  if (!std::filesystem::exists(path)) {
    return std::nullopt;
  }
  AtlasRecord record = load_atlas(path);
  if (AtlasKey::of(record).canonical() != key.canonical()) {
    throw SerialError("atlas key mismatch (hash collision or foreign file): " +
                      path);
  }
  return std::move(record.atlas);
}

std::vector<std::string> AtlasStore::list() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".atlas") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lamb::store
