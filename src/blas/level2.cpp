#include "blas/level2.hpp"

#include "support/check.hpp"

namespace lamb::blas {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

void gemv(bool trans, double alpha, ConstMatrixView a,
          std::span<const double> x, double beta, std::span<double> y) {
  const index_t rows = trans ? a.cols() : a.rows();
  const index_t cols = trans ? a.rows() : a.cols();
  LAMB_CHECK(static_cast<index_t>(x.size()) == cols, "gemv: x length");
  LAMB_CHECK(static_cast<index_t>(y.size()) == rows, "gemv: y length");

  for (index_t i = 0; i < rows; ++i) {
    y[static_cast<std::size_t>(i)] =
        (beta == 0.0) ? 0.0 : beta * y[static_cast<std::size_t>(i)];
  }
  if (!trans) {
    // Column-major friendly: accumulate one column at a time.
    for (index_t j = 0; j < cols; ++j) {
      const double xj = alpha * x[static_cast<std::size_t>(j)];
      if (xj == 0.0) {
        continue;
      }
      for (index_t i = 0; i < rows; ++i) {
        y[static_cast<std::size_t>(i)] += a(i, j) * xj;
      }
    }
  } else {
    for (index_t i = 0; i < rows; ++i) {
      double s = 0.0;
      for (index_t j = 0; j < cols; ++j) {
        s += a(j, i) * x[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] += alpha * s;
    }
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         MatrixView a) {
  LAMB_CHECK(static_cast<index_t>(x.size()) == a.rows(), "ger: x length");
  LAMB_CHECK(static_cast<index_t>(y.size()) == a.cols(), "ger: y length");
  for (index_t j = 0; j < a.cols(); ++j) {
    const double yj = alpha * y[static_cast<std::size_t>(j)];
    if (yj == 0.0) {
      continue;
    }
    for (index_t i = 0; i < a.rows(); ++i) {
      a(i, j) += x[static_cast<std::size_t>(i)] * yj;
    }
  }
}

void symv(double alpha, ConstMatrixView a, std::span<const double> x,
          double beta, std::span<double> y) {
  const index_t n = a.rows();
  LAMB_CHECK(a.cols() == n, "symv: A must be square");
  LAMB_CHECK(static_cast<index_t>(x.size()) == n, "symv: x length");
  LAMB_CHECK(static_cast<index_t>(y.size()) == n, "symv: y length");

  for (index_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] =
        (beta == 0.0) ? 0.0 : beta * y[static_cast<std::size_t>(i)];
  }
  // One sweep over the stored lower triangle updates both halves: column j
  // contributes a(i,j)*x[j] to y[i] and, by symmetry, a(i,j)*x[i] to y[j].
  for (index_t j = 0; j < n; ++j) {
    const double xj = alpha * x[static_cast<std::size_t>(j)];
    double mirrored = a(j, j) * x[static_cast<std::size_t>(j)];
    for (index_t i = j + 1; i < n; ++i) {
      y[static_cast<std::size_t>(i)] += a(i, j) * xj;
      mirrored += a(i, j) * x[static_cast<std::size_t>(i)];
    }
    y[static_cast<std::size_t>(j)] += alpha * mirrored;
  }
}

void trmv(bool lower, bool trans, ConstMatrixView t, std::span<double> x) {
  const index_t n = t.rows();
  LAMB_CHECK(t.cols() == n, "trmv: T must be square");
  LAMB_CHECK(static_cast<index_t>(x.size()) == n, "trmv: x length");
  const bool effective_lower = lower != trans;  // transposing flips triangle

  const auto elem = [&](index_t i, index_t j) {
    return trans ? t(j, i) : t(i, j);
  };
  if (effective_lower) {
    // Work bottom-up so untouched entries are still original.
    for (index_t i = n; i-- > 0;) {
      double s = 0.0;
      for (index_t j = 0; j <= i; ++j) {
        s += elem(i, j) * x[static_cast<std::size_t>(j)];
      }
      x[static_cast<std::size_t>(i)] = s;
    }
  } else {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t j = i; j < n; ++j) {
        s += elem(i, j) * x[static_cast<std::size_t>(j)];
      }
      x[static_cast<std::size_t>(i)] = s;
    }
  }
}

void trsv(bool lower, bool trans, ConstMatrixView t, std::span<double> x) {
  const index_t n = t.rows();
  LAMB_CHECK(t.cols() == n, "trsv: T must be square");
  LAMB_CHECK(static_cast<index_t>(x.size()) == n, "trsv: x length");
  const bool effective_lower = lower != trans;

  const auto elem = [&](index_t i, index_t j) {
    return trans ? t(j, i) : t(i, j);
  };
  if (effective_lower) {
    for (index_t i = 0; i < n; ++i) {
      double s = x[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < i; ++j) {
        s -= elem(i, j) * x[static_cast<std::size_t>(j)];
      }
      const double d = elem(i, i);
      LAMB_CHECK(d != 0.0, "trsv: singular triangular matrix");
      x[static_cast<std::size_t>(i)] = s / d;
    }
  } else {
    for (index_t i = n; i-- > 0;) {
      double s = x[static_cast<std::size_t>(i)];
      for (index_t j = i + 1; j < n; ++j) {
        s -= elem(i, j) * x[static_cast<std::size_t>(j)];
      }
      const double d = elem(i, i);
      LAMB_CHECK(d != 0.0, "trsv: singular triangular matrix");
      x[static_cast<std::size_t>(i)] = s / d;
    }
  }
}

}  // namespace lamb::blas
