// AVX2+FMA 8x6 microkernel. Compiled with -mavx2 -mfma (see CMakeLists.txt);
// only ever *called* when CPUID reports both features, so the dispatcher can
// safely link it on any x86-64 build host.
//
// Geometry: MR = 8 rows (two ymm vectors along the contiguous column-major C
// columns), NR = 6 columns. That gives 12 ymm accumulators + 2 A vectors +
// 1 B broadcast = 15 of the 16 architectural registers — the classic FMA
// register tiling: 12 independent chains keep both FMA ports busy across the
// ~4-cycle FMA latency.
#include <immintrin.h>

#include "blas/microkernel_tiers.hpp"

namespace lamb::blas {

namespace {

constexpr la::index_t kAvx2MR = 8;
constexpr la::index_t kAvx2NR = 6;

void avx2_kernel(la::index_t kc, double alpha, const double* a_panel,
                 const double* b_panel, double beta, double* c,
                 la::index_t ldc) {
  __m256d acc_lo[kAvx2NR];
  __m256d acc_hi[kAvx2NR];
  for (int j = 0; j < kAvx2NR; ++j) {
    acc_lo[j] = _mm256_setzero_pd();
    acc_hi[j] = _mm256_setzero_pd();
  }

  const double* a = a_panel;
  const double* b = b_panel;
  la::index_t p = 0;
  // Unrolled-by-2 k-loop: amortises the pointer bumps; the accumulator
  // chains are unchanged (one FMA per accumulator per k step).
  for (; p + 1 < kc; p += 2) {
    __m256d a0 = _mm256_loadu_pd(a);
    __m256d a1 = _mm256_loadu_pd(a + 4);
    for (int j = 0; j < kAvx2NR; ++j) {
      const __m256d bj = _mm256_broadcast_sd(b + j);
      acc_lo[j] = _mm256_fmadd_pd(a0, bj, acc_lo[j]);
      acc_hi[j] = _mm256_fmadd_pd(a1, bj, acc_hi[j]);
    }
    a0 = _mm256_loadu_pd(a + kAvx2MR);
    a1 = _mm256_loadu_pd(a + kAvx2MR + 4);
    for (int j = 0; j < kAvx2NR; ++j) {
      const __m256d bj = _mm256_broadcast_sd(b + kAvx2NR + j);
      acc_lo[j] = _mm256_fmadd_pd(a0, bj, acc_lo[j]);
      acc_hi[j] = _mm256_fmadd_pd(a1, bj, acc_hi[j]);
    }
    a += 2 * kAvx2MR;
    b += 2 * kAvx2NR;
  }
  for (; p < kc; ++p) {
    const __m256d a0 = _mm256_loadu_pd(a);
    const __m256d a1 = _mm256_loadu_pd(a + 4);
    for (int j = 0; j < kAvx2NR; ++j) {
      const __m256d bj = _mm256_broadcast_sd(b + j);
      acc_lo[j] = _mm256_fmadd_pd(a0, bj, acc_lo[j]);
      acc_hi[j] = _mm256_fmadd_pd(a1, bj, acc_hi[j]);
    }
    a += kAvx2MR;
    b += kAvx2NR;
  }

  const __m256d valpha = _mm256_set1_pd(alpha);
  if (beta == 0.0) {
    for (int j = 0; j < kAvx2NR; ++j) {
      double* cj = c + j * ldc;
      _mm256_storeu_pd(cj, _mm256_mul_pd(valpha, acc_lo[j]));
      _mm256_storeu_pd(cj + 4, _mm256_mul_pd(valpha, acc_hi[j]));
    }
  } else if (beta == 1.0) {
    for (int j = 0; j < kAvx2NR; ++j) {
      double* cj = c + j * ldc;
      _mm256_storeu_pd(
          cj, _mm256_fmadd_pd(valpha, acc_lo[j], _mm256_loadu_pd(cj)));
      _mm256_storeu_pd(
          cj + 4, _mm256_fmadd_pd(valpha, acc_hi[j], _mm256_loadu_pd(cj + 4)));
    }
  } else {
    const __m256d vbeta = _mm256_set1_pd(beta);
    for (int j = 0; j < kAvx2NR; ++j) {
      double* cj = c + j * ldc;
      _mm256_storeu_pd(cj,
                       _mm256_fmadd_pd(vbeta, _mm256_loadu_pd(cj),
                                       _mm256_mul_pd(valpha, acc_lo[j])));
      _mm256_storeu_pd(cj + 4,
                       _mm256_fmadd_pd(vbeta, _mm256_loadu_pd(cj + 4),
                                       _mm256_mul_pd(valpha, acc_hi[j])));
    }
  }
}

constexpr Microkernel kAvx2{"avx2", kAvx2MR, kAvx2NR, avx2_kernel};

}  // namespace

const Microkernel& detail_avx2_microkernel() { return kAvx2; }

}  // namespace lamb::blas
