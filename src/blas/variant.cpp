#include "blas/variant.hpp"

#include <algorithm>

namespace lamb::blas {

std::string_view to_string(GemmVariant v) {
  switch (v) {
    case GemmVariant::kNaive:
      return "naive";
    case GemmVariant::kSmallK:
      return "small-k";
    case GemmVariant::kBlocked:
      return "blocked";
  }
  return "?";
}

GemmVariant select_gemm_variant(la::index_t m, la::index_t n, la::index_t k) {
  if (std::max({m, n, k}) <= kNaiveLimit) {
    return GemmVariant::kNaive;
  }
  if (k <= kSmallKLimit) {
    return GemmVariant::kSmallK;
  }
  return GemmVariant::kBlocked;
}

}  // namespace lamb::blas
