// Panel packing for the blocked GEMM.
//
// A-panels are packed into row-major micro-panels of `mr` rows; B-panels into
// column micro-panels of `nr` columns, where (mr, nr) is the geometry of the
// runtime-dispatched microkernel (see blas/microkernel.hpp). Edge panels are
// zero-padded so the microkernel never needs a scalar cleanup path for the
// k-loop.
//
// The pack routines reuse the capacity of the caller's buffer across blocks:
// the buffer only ever grows, interior panel elements are written exactly
// once, and zero-fill is confined to the fringe rows/columns of the final
// partial micro-panel — no per-block whole-buffer assign().
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lamb::blas {

inline constexpr la::index_t kMR = 4;  ///< scalar-microkernel rows
inline constexpr la::index_t kNR = 8;  ///< scalar-microkernel cols (canonical
                                       ///< panel width for the parallel split)

/// Cache blocking parameters (double precision, tuned for a ~32K L1 / 1M L2).
struct BlockSizes {
  la::index_t mc = 128;
  la::index_t kc = 256;
  la::index_t nc = 2048;
};

/// Pack op(A)(ic:ic+mc, pc:pc+kc) into `buf` as ceil(mc/mr) micro-panels of
/// mr x kc (zero-padded rows in the final partial panel only). `trans`
/// selects op = transpose. Element (i, p) of the block lands at
/// buf[(i/mr)*mr*kc + p*mr + i%mr]. `buf` is grown if needed but never
/// shrunk or cleared; every element of the packed region is written.
void pack_a(bool trans, la::ConstMatrixView a, la::index_t ic, la::index_t pc,
            la::index_t mc, la::index_t kc, la::index_t mr,
            std::vector<double>& buf);

/// Pack op(B)(pc:pc+kc, jc:jc+nc) into `buf` as ceil(nc/nr) micro-panels of
/// kc x nr (zero-padded cols in the final partial panel only).
/// Element (p, j) of the block lands at buf[(j/nr)*nr*kc + p*nr + j%nr].
void pack_b(bool trans, la::ConstMatrixView b, la::index_t pc, la::index_t jc,
            la::index_t kc, la::index_t nc, la::index_t nr,
            std::vector<double>& buf);

}  // namespace lamb::blas
