// Panel packing for the blocked GEMM.
//
// A-panels are packed into row-major micro-panels of MR rows; B-panels into
// column micro-panels of NR columns. Edges are zero-padded so the microkernel
// never needs a scalar cleanup path for the k-loop.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lamb::blas {

inline constexpr la::index_t kMR = 4;  ///< microkernel rows
inline constexpr la::index_t kNR = 8;  ///< microkernel cols

/// Cache blocking parameters (double precision, tuned for a ~32K L1 / 1M L2).
struct BlockSizes {
  la::index_t mc = 128;
  la::index_t kc = 256;
  la::index_t nc = 2048;
};

/// Pack op(A)(ic:ic+mc, pc:pc+kc) into `buf` as ceil(mc/MR) micro-panels of
/// MR x kc (zero-padded rows at the edge). `trans` selects op = transpose.
/// Element (i, p) of the block lands at buf[(i/MR)*MR*kc + p*MR + i%MR].
void pack_a(bool trans, la::ConstMatrixView a, la::index_t ic, la::index_t pc,
            la::index_t mc, la::index_t kc, std::vector<double>& buf);

/// Pack op(B)(pc:pc+kc, jc:jc+nc) into `buf` as ceil(nc/NR) micro-panels of
/// kc x NR (zero-padded cols at the edge).
/// Element (p, j) of the block lands at buf[(j/NR)*NR*kc + p*NR + j%NR].
void pack_b(bool trans, la::ConstMatrixView b, la::index_t pc, la::index_t jc,
            la::index_t kc, la::index_t nc, std::vector<double>& buf);

}  // namespace lamb::blas
