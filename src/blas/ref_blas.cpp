#include "blas/ref_blas.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

double op_at(ConstMatrixView m, bool trans, index_t i, index_t j) {
  return trans ? m(j, i) : m(i, j);
}

void scale(MatrixView c, double beta) {
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      c(i, j) = (beta == 0.0) ? 0.0 : beta * c(i, j);
    }
  }
}

}  // namespace

void ref_gemm(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
              ConstMatrixView b, double beta, MatrixView c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  LAMB_CHECK((trans_a ? a.cols() : a.rows()) == m, "ref_gemm: A rows mismatch");
  LAMB_CHECK((trans_b ? b.cols() : b.rows()) == k, "ref_gemm: B rows mismatch");
  LAMB_CHECK((trans_b ? b.rows() : b.cols()) == n, "ref_gemm: B cols mismatch");

  scale(c, beta);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const double bpj = alpha * op_at(b, trans_b, p, j);
      if (bpj == 0.0) {
        continue;
      }
      for (index_t i = 0; i < m; ++i) {
        c(i, j) += op_at(a, trans_a, i, p) * bpj;
      }
    }
  }
}

void ref_syrk(double alpha, ConstMatrixView a, double beta, MatrixView c) {
  const index_t n = c.rows();
  LAMB_CHECK(c.cols() == n, "ref_syrk: C must be square");
  LAMB_CHECK(a.rows() == n, "ref_syrk: A rows mismatch");
  const index_t k = a.cols();

  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        s += a(i, p) * a(j, p);
      }
      const double prev = (beta == 0.0) ? 0.0 : beta * c(i, j);
      c(i, j) = prev + alpha * s;
    }
  }
}

void ref_symm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
              MatrixView c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  LAMB_CHECK(a.rows() == m && a.cols() == m, "ref_symm: A must be m x m");
  LAMB_CHECK(b.rows() == m && b.cols() == n, "ref_symm: B shape mismatch");

  // a_sym(i, p): symmetric element fetched from the stored lower triangle.
  const auto a_sym = [&](index_t i, index_t p) {
    return (i >= p) ? a(i, p) : a(p, i);
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < m; ++p) {
        s += a_sym(i, p) * b(p, j);
      }
      const double prev = (beta == 0.0) ? 0.0 : beta * c(i, j);
      c(i, j) = prev + alpha * s;
    }
  }
}

}  // namespace lamb::blas
