// Triangular solve with multiple right-hand sides (level-3 BLAS TRSM),
// restricted to the cases the factorisation layer needs:
//   left,  lower, op(L) X = alpha B   (forward / transposed-back subst.)
//   right, lower, X op(L) = alpha B   (used by the blocked Cholesky)
// Blocked: diagonal blocks are solved with TRSV columns, off-diagonal
// updates run through the fast GEMM path.
#pragma once

#include "blas/gemm.hpp"
#include "la/matrix.hpp"

namespace lamb::blas {

/// Solve op(L) * X = alpha * B in place (X overwrites B).
/// L is m x m lower triangular (non-unit diagonal), B is m x n.
void trsm_left_lower(bool trans, double alpha, la::ConstMatrixView l,
                     la::MatrixView b, const GemmOptions& opts = {});

/// Solve X * op(L) = alpha * B in place (X overwrites B).
/// L is n x n lower triangular (non-unit diagonal), B is m x n.
void trsm_right_lower(bool trans, double alpha, la::ConstMatrixView l,
                      la::MatrixView b, const GemmOptions& opts = {});

}  // namespace lamb::blas
