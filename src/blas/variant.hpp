// Internal kernel-variant dispatch.
//
// Optimised BLAS libraries switch between internal algorithmic variants as a
// function of operand shape (small-k rank updates, skinny-m paths, fully
// blocked paths). The paper identifies exactly these switches as the cause of
// *abrupt* efficiency changes at anomaly-region boundaries (Sec. 4.1.3). Our
// substrate makes the dispatch explicit and introspectable so experiments can
// correlate region boundaries with variant changes.
#pragma once

#include <string_view>

#include "la/matrix.hpp"

namespace lamb::blas {

enum class GemmVariant {
  kNaive,    ///< tiny problems: plain triple loop, no packing
  kSmallK,   ///< k below the blocking threshold: unpacked rank-k update
  kBlocked,  ///< general case: packed, cache-blocked, register microkernel
};

std::string_view to_string(GemmVariant v);

/// Shape-based variant selection used by gemm(); pure function of the sizes.
GemmVariant select_gemm_variant(la::index_t m, la::index_t n, la::index_t k);

/// Thresholds (exposed for tests and for the efficiency model narrative).
///
/// Re-tuned against the dispatched SIMD microkernels with the bm_kernels
/// crossover sweeps (`bm_kernels` section "crossover"): the vectorised
/// blocked path beats naive from ~8 cubes up on every tier (8.6 vs 5.8
/// GFLOP/s at 32-cubes even on the scalar tier) and beats the unpacked
/// small-k update from k ~ 5 on the scalar tier (8.4 vs 7.7 GFLOP/s at
/// k = 8) and from k = 2 on the AVX tiers, so both crossovers sit far below
/// their pre-SIMD values (32 / 24).
inline constexpr la::index_t kNaiveLimit = 8;   ///< max(m,n,k) <= this -> naive
inline constexpr la::index_t kSmallKLimit = 4;  ///< k <= this -> small-k path

}  // namespace lamb::blas
