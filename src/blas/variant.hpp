// Internal kernel-variant dispatch.
//
// Optimised BLAS libraries switch between internal algorithmic variants as a
// function of operand shape (small-k rank updates, skinny-m paths, fully
// blocked paths). The paper identifies exactly these switches as the cause of
// *abrupt* efficiency changes at anomaly-region boundaries (Sec. 4.1.3). Our
// substrate makes the dispatch explicit and introspectable so experiments can
// correlate region boundaries with variant changes.
#pragma once

#include <string_view>

#include "la/matrix.hpp"

namespace lamb::blas {

enum class GemmVariant {
  kNaive,    ///< tiny problems: plain triple loop, no packing
  kSmallK,   ///< k below the blocking threshold: unpacked rank-k update
  kBlocked,  ///< general case: packed, cache-blocked, register microkernel
};

std::string_view to_string(GemmVariant v);

/// Shape-based variant selection used by gemm(); pure function of the sizes.
GemmVariant select_gemm_variant(la::index_t m, la::index_t n, la::index_t k);

/// Thresholds (exposed for tests and for the efficiency model narrative).
inline constexpr la::index_t kNaiveLimit = 32;   ///< max(m,n,k) <= this -> naive
inline constexpr la::index_t kSmallKLimit = 24;  ///< k <= this -> small-k path

}  // namespace lamb::blas
