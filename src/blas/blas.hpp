// Umbrella header for the BLAS substrate.
#pragma once

#include "blas/gemm.hpp"    // IWYU pragma: export
#include "blas/ref_blas.hpp"  // IWYU pragma: export
#include "blas/symm.hpp"    // IWYU pragma: export
#include "blas/syrk.hpp"    // IWYU pragma: export
#include "blas/trsm.hpp"    // IWYU pragma: export
#include "blas/variant.hpp"  // IWYU pragma: export
