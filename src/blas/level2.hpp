// Level-2 BLAS: matrix-vector operations.
//
// These are what the paper's introductory example is made of: evaluating
// (x*y^T)*A costs 2*n^3 FLOPs through GER + GEMM while x*(y^T*A) costs
// 4*n^2 through two GEMVs — the canonical case where the FLOP count *is* a
// reliable discriminant.
#pragma once

#include <span>

#include "la/matrix.hpp"

namespace lamb::blas {

/// y := alpha * op(A) * x + beta * y; op(A) is m x n.
void gemv(bool trans, double alpha, la::ConstMatrixView a,
          std::span<const double> x, double beta, std::span<double> y);

/// Rank-1 update: A := alpha * x * y^T + A; A is m x n.
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         la::MatrixView a);

/// y := alpha * A * x + beta * y with A symmetric (lower triangle stored).
void symv(double alpha, la::ConstMatrixView a, std::span<const double> x,
          double beta, std::span<double> y);

/// x := op(T) * x with T triangular (lower when lower==true); unit-stride.
void trmv(bool lower, bool trans, la::ConstMatrixView t, std::span<double> x);

/// Solve op(T) * x = b in place (x overwrites b); T triangular,
/// non-unit diagonal.
void trsv(bool lower, bool trans, la::ConstMatrixView t, std::span<double> x);

}  // namespace lamb::blas
