#include "blas/microkernel.hpp"

namespace lamb::blas {

using la::index_t;
using la::MatrixView;

void microkernel(index_t kc, double alpha, const double* a_panel,
                 const double* b_panel, MatrixView c, index_t i0, index_t j0,
                 index_t rows, index_t cols) {
  // Accumulate the full MR x NR tile in registers; the panels are zero-padded
  // so the k-loop needs no edge handling.
  double acc[kMR][kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* a = a_panel + p * kMR;
    const double* b = b_panel + p * kNR;
    for (index_t i = 0; i < kMR; ++i) {
      const double ai = a[i];
      for (index_t j = 0; j < kNR; ++j) {
        acc[i][j] += ai * b[j];
      }
    }
  }
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      c(i0 + i, j0 + j) += alpha * acc[i][j];
    }
  }
}

}  // namespace lamb::blas
