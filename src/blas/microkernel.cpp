#include "blas/microkernel.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "blas/microkernel_tiers.hpp"
#include "blas/packing.hpp"
#include "support/check.hpp"

namespace lamb::blas {

using la::index_t;

namespace {

void scalar_kernel(index_t kc, double alpha, const double* a_panel,
                   const double* b_panel, double beta, double* c,
                   index_t ldc) {
  // Accumulate the full MR x NR tile in registers; the panels are
  // zero-padded so the k-loop needs no edge handling.
  double acc[kNR][kMR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* a = a_panel + p * kMR;
    const double* b = b_panel + p * kNR;
    for (index_t j = 0; j < kNR; ++j) {
      const double bj = b[j];
      for (index_t i = 0; i < kMR; ++i) {
        acc[j][i] += a[i] * bj;
      }
    }
  }
  for (index_t j = 0; j < kNR; ++j) {
    double* cj = c + j * ldc;
    if (beta == 0.0) {
      for (index_t i = 0; i < kMR; ++i) {
        cj[i] = alpha * acc[j][i];
      }
    } else if (beta == 1.0) {
      for (index_t i = 0; i < kMR; ++i) {
        cj[i] += alpha * acc[j][i];
      }
    } else {
      for (index_t i = 0; i < kMR; ++i) {
        cj[i] = beta * cj[i] + alpha * acc[j][i];
      }
    }
  }
}

constexpr Microkernel kScalar{"scalar", kMR, kNR, scalar_kernel};

// __builtin_cpu_supports demands a literal argument, hence one helper per
// feature set instead of a string-parameter helper.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
}
bool cpu_has_avx512f() { return __builtin_cpu_supports("avx512f") != 0; }
#else
bool cpu_has_avx2_fma() { return false; }
bool cpu_has_avx512f() { return false; }
#endif

std::vector<const Microkernel*> build_available() {
  std::vector<const Microkernel*> kernels;
  kernels.push_back(&kScalar);
#ifdef LAMB_HAVE_AVX2_KERNEL
  if (cpu_has_avx2_fma()) {
    kernels.push_back(&detail_avx2_microkernel());
  }
#endif
#ifdef LAMB_HAVE_AVX512_KERNEL
  if (cpu_has_avx512f()) {
    kernels.push_back(&detail_avx512_microkernel());
  }
#endif
  return kernels;
}

std::atomic<const Microkernel*> g_active{nullptr};

const Microkernel* resolve_from_env() {
  const char* env = std::getenv("LAMB_KERNEL");
  const std::string_view choice = (env != nullptr) ? env : "auto";
  if (const Microkernel* k = select_microkernel(choice)) {
    return k;
  }
  std::fprintf(stderr,
               "lamb: LAMB_KERNEL=%s is unknown or unsupported on this CPU; "
               "using auto dispatch\n",
               env);
  return select_microkernel("auto");
}

}  // namespace

const Microkernel& scalar_microkernel() { return kScalar; }

const std::vector<const Microkernel*>& available_microkernels() {
  static const std::vector<const Microkernel*> kernels = build_available();
  return kernels;
}

const Microkernel* select_microkernel(std::string_view choice) {
  const auto& kernels = available_microkernels();
  if (choice.empty() || choice == "auto") {
    return kernels.back();
  }
  for (const Microkernel* k : kernels) {
    if (choice == k->name) {
      return k;
    }
  }
  return nullptr;
}

const Microkernel& active_microkernel() {
  const Microkernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolve_from_env();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

void force_microkernel(const Microkernel* kernel) {
  g_active.store(kernel != nullptr ? kernel : resolve_from_env(),
                 std::memory_order_release);
}

void microkernel_fringe(const Microkernel& mk, index_t kc, double alpha,
                        const double* a_panel, const double* b_panel,
                        double beta, double* c, index_t ldc, index_t rows,
                        index_t cols) {
  LAMB_CHECK(mk.mr <= kMaxMR && mk.nr <= kMaxNR,
             "microkernel geometry exceeds the fringe tile buffer");
  // Full tile into a local buffer (beta = 0: the buffer is never read),
  // then fold the valid corner into C with the caller's beta.
  double tile[kMaxMR * kMaxNR];
  mk.fn(kc, alpha, a_panel, b_panel, 0.0, tile, mk.mr);
  for (index_t j = 0; j < cols; ++j) {
    const double* tj = tile + j * mk.mr;
    double* cj = c + j * ldc;
    if (beta == 0.0) {
      for (index_t i = 0; i < rows; ++i) {
        cj[i] = tj[i];
      }
    } else if (beta == 1.0) {
      for (index_t i = 0; i < rows; ++i) {
        cj[i] += tj[i];
      }
    } else {
      for (index_t i = 0; i < rows; ++i) {
        cj[i] = beta * cj[i] + tj[i];
      }
    }
  }
}

}  // namespace lamb::blas
