#include "blas/gemm.hpp"

#include <algorithm>
#include <vector>

#include "blas/level1.hpp"
#include "blas/microkernel.hpp"
#include "blas/ref_blas.hpp"
#include "blas/variant.hpp"
#include "obs/trace.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

double op_at(ConstMatrixView m, bool trans, index_t i, index_t j) {
  return trans ? m(j, i) : m(i, j);
}

/// Unpacked rank-k update: efficient when k is small because A and B rows fit
/// in registers/L1 without packing overhead. C += alpha * op(A) * op(B).
void gemm_small_k(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
                  ConstMatrixView b, MatrixView c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const double bpj = alpha * op_at(b, trans_b, p, j);
      if (!trans_a) {
        const double* acol = &a(0, p);
        double* ccol = &c(0, j);
        for (index_t i = 0; i < m; ++i) {
          ccol[i] += acol[i] * bpj;
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          c(i, j) += a(p, i) * bpj;
        }
      }
    }
  }
}

/// Macro-kernel: sweep the micro-panel grid of one packed (mc x kc) A block
/// against one packed (kc x nc) B block, writing the C tiles at
/// (ic.., jc..) directly through the dispatched microkernel. `beta` applies
/// to this slab's store (the caller folds the user's beta into the first
/// kc slab and accumulates the rest).
void macro_kernel(const Microkernel& mk, const double* a_buf,
                  const double* b_buf, index_t kc, index_t mc, index_t nc,
                  double alpha, double beta, MatrixView c, index_t ic,
                  index_t jc) {
  const index_t a_panels = (mc + mk.mr - 1) / mk.mr;
  const index_t b_panels = (nc + mk.nr - 1) / mk.nr;
  const index_t ldc = c.ld();
  for (index_t jp = 0; jp < b_panels; ++jp) {
    const double* bp = b_buf + jp * mk.nr * kc;
    const index_t j0 = jp * mk.nr;
    const index_t cols = std::min(mk.nr, nc - j0);
    for (index_t ip = 0; ip < a_panels; ++ip) {
      const double* ap = a_buf + ip * mk.mr * kc;
      const index_t i0 = ip * mk.mr;
      const index_t rows = std::min(mk.mr, mc - i0);
      double* ctile = &c(ic + i0, jc + j0);
      if (rows == mk.mr && cols == mk.nr) {
        mk.fn(kc, alpha, ap, bp, beta, ctile, ldc);
      } else {
        microkernel_fringe(mk, kc, alpha, ap, bp, beta, ctile, ldc, rows,
                           cols);
      }
    }
  }
}

/// One serial blocked GEMM over the given column range [j_begin, j_end),
/// applying the user's beta on the first kc slab of each column block.
void gemm_blocked_range(const Microkernel& mk, bool trans_a, bool trans_b,
                        double alpha, ConstMatrixView a, ConstMatrixView b,
                        double beta, MatrixView c, const BlockSizes& bs,
                        index_t j_begin, index_t j_end) {
  const index_t m = c.rows();
  const index_t k = trans_a ? a.rows() : a.cols();

  std::vector<double> a_buf;
  std::vector<double> b_buf;

  for (index_t jc = j_begin; jc < j_end; jc += bs.nc) {
    const index_t nc = std::min(bs.nc, j_end - jc);
    for (index_t pc = 0; pc < k; pc += bs.kc) {
      const index_t kc = std::min(bs.kc, k - pc);
      const double beta_eff = (pc == 0) ? beta : 1.0;
      pack_b(trans_b, b, pc, jc, kc, nc, mk.nr, b_buf);
      for (index_t ic = 0; ic < m; ic += bs.mc) {
        const index_t mc = std::min(bs.mc, m - ic);
        pack_a(trans_a, a, ic, pc, mc, kc, mk.mr, a_buf);
        macro_kernel(mk, a_buf.data(), b_buf.data(), kc, mc, nc, alpha,
                     beta_eff, c, ic, jc);
      }
    }
  }
}

/// Row-block parallel blocked GEMM: the caller thread packs each (jc, pc)
/// B panel once, then the pool splits that slab's mc row blocks — every
/// worker packs its own A block (disjoint C rows, no synchronisation) while
/// sharing the hot packed B panel. This keeps the pool busy on tall-skinny
/// shapes whose n cannot feed one column stripe per worker.
void gemm_blocked_row_parallel(const Microkernel& mk, bool trans_a,
                               bool trans_b, double alpha, ConstMatrixView a,
                               ConstMatrixView b, double beta, MatrixView c,
                               const BlockSizes& bs,
                               parallel::ThreadPool& pool) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  const index_t row_blocks = (m + bs.mc - 1) / bs.mc;

  std::vector<double> b_buf;
  for (index_t jc = 0; jc < n; jc += bs.nc) {
    const index_t nc = std::min(bs.nc, n - jc);
    for (index_t pc = 0; pc < k; pc += bs.kc) {
      const index_t kc = std::min(bs.kc, k - pc);
      const double beta_eff = (pc == 0) ? beta : 1.0;
      pack_b(trans_b, b, pc, jc, kc, nc, mk.nr, b_buf);
      pool.parallel_for(
          static_cast<std::ptrdiff_t>(row_blocks),
          [&](std::ptrdiff_t rb_begin, std::ptrdiff_t rb_end) {
            std::vector<double> a_buf;
            for (std::ptrdiff_t rb = rb_begin; rb < rb_end; ++rb) {
              const index_t ic = static_cast<index_t>(rb) * bs.mc;
              const index_t mc = std::min(bs.mc, m - ic);
              pack_a(trans_a, a, ic, pc, mc, kc, mk.mr, a_buf);
              macro_kernel(mk, a_buf.data(), b_buf.data(), kc, mc, nc, alpha,
                           beta_eff, c, ic, jc);
            }
          });
    }
  }
}

}  // namespace

std::vector<ColumnStripe> partition_column_stripes(index_t n,
                                                   index_t max_stripes,
                                                   index_t width) {
  LAMB_CHECK(n >= 0, "stripe partition: negative range");
  LAMB_CHECK(max_stripes >= 1, "stripe partition: need at least one stripe");
  LAMB_CHECK(width >= 1, "stripe partition: need a positive panel width");
  std::vector<ColumnStripe> stripes;
  if (n == 0) {
    return stripes;
  }
  // Distribute whole width-blocks, not rounded-up per-stripe widths: rounding
  // `ceil(n / stripes)` up to the panel width used to oversize early stripes
  // and leave trailing stripes empty (n = 65, 8 workers gave 2 of the 9
  // blocks to stripe 0 and none to stripes 5..7). The remainder blocks go to
  // the TRAILING stripes so the clipped final panel lands in a stripe that
  // also carries an extra block — that keeps column widths within one panel
  // of each other in every case.
  const index_t blocks = (n + width - 1) / width;
  const index_t count = std::min(max_stripes, blocks);
  const index_t per = blocks / count;
  const index_t extra = blocks % count;
  stripes.reserve(static_cast<std::size_t>(count));
  index_t block = 0;
  for (index_t s = 0; s < count; ++s) {
    const index_t take = per + (s >= count - extra ? 1 : 0);
    stripes.push_back(ColumnStripe{block * width,
                                   std::min(n, (block + take) * width)});
    block += take;
  }
  return stripes;
}

GemmParallelMode select_gemm_parallel_mode(index_t m, index_t n,
                                           std::size_t pool_size,
                                           const BlockSizes& bs, index_t nr) {
  if (pool_size <= 1 || m == 0 || n == 0) {
    return GemmParallelMode::kSerial;
  }
  const auto workers = static_cast<index_t>(pool_size);
  const index_t col_stripes = std::min(workers, (n + nr - 1) / nr);
  const index_t row_blocks = std::min(workers, (m + bs.mc - 1) / bs.mc);
  // Column stripes are cheaper (one barrier per GEMM, fully independent
  // packing pipelines), so they win whenever n is wide enough to feed every
  // worker — or at least as many workers as row blocks could.
  if (col_stripes >= workers || col_stripes >= row_blocks) {
    return col_stripes > 1 ? GemmParallelMode::kColumnStripes
                           : GemmParallelMode::kSerial;
  }
  return GemmParallelMode::kRowBlocks;
}

void gemm(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c,
          const GemmOptions& opts) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  // One relaxed load when tracing is off; under a sampled trace each gemm
  // shows up as a kernel span in the caller's request tree, carrying its
  // 2mnk flop count so PMU-attributed spans report FLOP-per-cycle.
  const obs::SpanScope kernel_span(
      obs::Stage::kKernel, 2ull * static_cast<std::uint64_t>(m) *
                               static_cast<std::uint64_t>(n) *
                               static_cast<std::uint64_t>(k));
  LAMB_CHECK((trans_a ? a.cols() : a.rows()) == m, "gemm: A shape mismatch");
  LAMB_CHECK((trans_b ? b.cols() : b.rows()) == k, "gemm: B shape mismatch");
  LAMB_CHECK((trans_b ? b.rows() : b.cols()) == n, "gemm: B cols mismatch");

  if (m == 0 || n == 0) {
    return;
  }
  if (k == 0 || alpha == 0.0) {
    scale_matrix(c, beta);
    return;
  }

  switch (opts.force_variant.value_or(select_gemm_variant(m, n, k))) {
    case GemmVariant::kNaive:
      ref_gemm(trans_a, trans_b, alpha, a, b, beta, c);
      return;
    case GemmVariant::kSmallK:
      scale_matrix(c, beta);
      gemm_small_k(trans_a, trans_b, alpha, a, b, c);
      return;
    case GemmVariant::kBlocked:
      break;
  }

  // Blocked path: beta is folded into the first kc slab's store inside the
  // microkernel (no separate O(m*n) scaling sweep over C).
  const Microkernel& mk = active_microkernel();
  parallel::ThreadPool* pool = opts.pool;
  const std::size_t pool_size = (pool != nullptr) ? pool->size() : 1;
  switch (select_gemm_parallel_mode(m, n, pool_size, opts.blocks, mk.nr)) {
    case GemmParallelMode::kSerial:
      gemm_blocked_range(mk, trans_a, trans_b, alpha, a, b, beta, c,
                         opts.blocks, 0, n);
      return;
    case GemmParallelMode::kRowBlocks:
      gemm_blocked_row_parallel(mk, trans_a, trans_b, alpha, a, b, beta, c,
                                opts.blocks, *pool);
      return;
    case GemmParallelMode::kColumnStripes:
      break;
  }

  // Parallelise over disjoint column stripes; each stripe owns its packing
  // buffers and a disjoint part of C, so no synchronisation is needed.
  const std::vector<ColumnStripe> stripes = partition_column_stripes(
      n, static_cast<index_t>(pool->size()), mk.nr);
  pool->parallel_for(static_cast<std::ptrdiff_t>(stripes.size()),
                     [&](std::ptrdiff_t s_begin, std::ptrdiff_t s_end) {
    for (std::ptrdiff_t s = s_begin; s < s_end; ++s) {
      const ColumnStripe& stripe = stripes[static_cast<std::size_t>(s)];
      gemm_blocked_range(mk, trans_a, trans_b, alpha, a, b, beta, c,
                         opts.blocks, stripe.begin, stripe.end);
    }
  });
}

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c,
            const GemmOptions& opts) {
  gemm(false, false, 1.0, a, b, 0.0, c, opts);
}

}  // namespace lamb::blas
