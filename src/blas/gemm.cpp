#include "blas/gemm.hpp"

#include <algorithm>
#include <vector>

#include "blas/microkernel.hpp"
#include "blas/ref_blas.hpp"
#include "blas/variant.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

void scale_c(MatrixView c, double beta) {
  if (beta == 1.0) {
    return;
  }
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      c(i, j) = (beta == 0.0) ? 0.0 : beta * c(i, j);
    }
  }
}

double op_at(ConstMatrixView m, bool trans, index_t i, index_t j) {
  return trans ? m(j, i) : m(i, j);
}

/// Unpacked rank-k update: efficient when k is small because A and B rows fit
/// in registers/L1 without packing overhead. C += alpha * op(A) * op(B).
void gemm_small_k(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
                  ConstMatrixView b, MatrixView c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const double bpj = alpha * op_at(b, trans_b, p, j);
      if (!trans_a) {
        const double* acol = &a(0, p);
        double* ccol = &c(0, j);
        for (index_t i = 0; i < m; ++i) {
          ccol[i] += acol[i] * bpj;
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          c(i, j) += a(p, i) * bpj;
        }
      }
    }
  }
}

/// One serial blocked GEMM over the given column range [j_begin, j_end).
void gemm_blocked_range(bool trans_a, bool trans_b, double alpha,
                        ConstMatrixView a, ConstMatrixView b, MatrixView c,
                        const BlockSizes& bs, index_t j_begin, index_t j_end) {
  const index_t m = c.rows();
  const index_t k = trans_a ? a.rows() : a.cols();

  std::vector<double> a_buf;
  std::vector<double> b_buf;

  for (index_t jc = j_begin; jc < j_end; jc += bs.nc) {
    const index_t nc = std::min(bs.nc, j_end - jc);
    for (index_t pc = 0; pc < k; pc += bs.kc) {
      const index_t kc = std::min(bs.kc, k - pc);
      pack_b(trans_b, b, pc, jc, kc, nc, b_buf);
      for (index_t ic = 0; ic < m; ic += bs.mc) {
        const index_t mc = std::min(bs.mc, m - ic);
        pack_a(trans_a, a, ic, pc, mc, kc, a_buf);
        // Macro-kernel: sweep micro-panels.
        const index_t a_panels = (mc + kMR - 1) / kMR;
        const index_t b_panels = (nc + kNR - 1) / kNR;
        for (index_t jp = 0; jp < b_panels; ++jp) {
          const double* bp = b_buf.data() + jp * kNR * kc;
          const index_t j0 = jc + jp * kNR;
          const index_t cols = std::min(kNR, jc + nc - j0);
          for (index_t ip = 0; ip < a_panels; ++ip) {
            const double* ap = a_buf.data() + ip * kMR * kc;
            const index_t i0 = ic + ip * kMR;
            const index_t rows = std::min(kMR, ic + mc - i0);
            microkernel(kc, alpha, ap, bp, c, i0, j0, rows, cols);
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c,
          const GemmOptions& opts) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  LAMB_CHECK((trans_a ? a.cols() : a.rows()) == m, "gemm: A shape mismatch");
  LAMB_CHECK((trans_b ? b.cols() : b.rows()) == k, "gemm: B shape mismatch");
  LAMB_CHECK((trans_b ? b.rows() : b.cols()) == n, "gemm: B cols mismatch");

  if (m == 0 || n == 0) {
    return;
  }
  if (k == 0 || alpha == 0.0) {
    scale_c(c, beta);
    return;
  }

  switch (select_gemm_variant(m, n, k)) {
    case GemmVariant::kNaive:
      ref_gemm(trans_a, trans_b, alpha, a, b, beta, c);
      return;
    case GemmVariant::kSmallK:
      scale_c(c, beta);
      gemm_small_k(trans_a, trans_b, alpha, a, b, c);
      return;
    case GemmVariant::kBlocked:
      break;
  }

  scale_c(c, beta);
  parallel::ThreadPool* pool = opts.pool;
  if (pool == nullptr || pool->size() == 1 || n < 2 * kNR) {
    gemm_blocked_range(trans_a, trans_b, alpha, a, b, c, opts.blocks, 0, n);
    return;
  }

  // Parallelise over disjoint column stripes; each stripe owns its packing
  // buffers and a disjoint part of C, so no synchronisation is needed.
  const auto workers = static_cast<index_t>(pool->size());
  const index_t stripes = std::min(workers, (n + kNR - 1) / kNR);
  const index_t per_stripe = ((n + stripes - 1) / stripes + kNR - 1) / kNR * kNR;
  pool->parallel_for(stripes, [&](index_t s_begin, index_t s_end) {
    for (index_t s = s_begin; s < s_end; ++s) {
      const index_t j0 = s * per_stripe;
      const index_t j1 = std::min(n, j0 + per_stripe);
      if (j0 < j1) {
        gemm_blocked_range(trans_a, trans_b, alpha, a, b, c, opts.blocks, j0,
                           j1);
      }
    }
  });
}

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c,
            const GemmOptions& opts) {
  gemm(false, false, 1.0, a, b, 0.0, c, opts);
}

}  // namespace lamb::blas
