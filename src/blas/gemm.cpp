#include "blas/gemm.hpp"

#include <algorithm>
#include <vector>

#include "blas/microkernel.hpp"
#include "blas/ref_blas.hpp"
#include "blas/variant.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

void scale_c(MatrixView c, double beta) {
  if (beta == 1.0) {
    return;
  }
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      c(i, j) = (beta == 0.0) ? 0.0 : beta * c(i, j);
    }
  }
}

double op_at(ConstMatrixView m, bool trans, index_t i, index_t j) {
  return trans ? m(j, i) : m(i, j);
}

/// Unpacked rank-k update: efficient when k is small because A and B rows fit
/// in registers/L1 without packing overhead. C += alpha * op(A) * op(B).
void gemm_small_k(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
                  ConstMatrixView b, MatrixView c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const double bpj = alpha * op_at(b, trans_b, p, j);
      if (!trans_a) {
        const double* acol = &a(0, p);
        double* ccol = &c(0, j);
        for (index_t i = 0; i < m; ++i) {
          ccol[i] += acol[i] * bpj;
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          c(i, j) += a(p, i) * bpj;
        }
      }
    }
  }
}

/// One serial blocked GEMM over the given column range [j_begin, j_end).
void gemm_blocked_range(bool trans_a, bool trans_b, double alpha,
                        ConstMatrixView a, ConstMatrixView b, MatrixView c,
                        const BlockSizes& bs, index_t j_begin, index_t j_end) {
  const index_t m = c.rows();
  const index_t k = trans_a ? a.rows() : a.cols();

  std::vector<double> a_buf;
  std::vector<double> b_buf;

  for (index_t jc = j_begin; jc < j_end; jc += bs.nc) {
    const index_t nc = std::min(bs.nc, j_end - jc);
    for (index_t pc = 0; pc < k; pc += bs.kc) {
      const index_t kc = std::min(bs.kc, k - pc);
      pack_b(trans_b, b, pc, jc, kc, nc, b_buf);
      for (index_t ic = 0; ic < m; ic += bs.mc) {
        const index_t mc = std::min(bs.mc, m - ic);
        pack_a(trans_a, a, ic, pc, mc, kc, a_buf);
        // Macro-kernel: sweep micro-panels.
        const index_t a_panels = (mc + kMR - 1) / kMR;
        const index_t b_panels = (nc + kNR - 1) / kNR;
        for (index_t jp = 0; jp < b_panels; ++jp) {
          const double* bp = b_buf.data() + jp * kNR * kc;
          const index_t j0 = jc + jp * kNR;
          const index_t cols = std::min(kNR, jc + nc - j0);
          for (index_t ip = 0; ip < a_panels; ++ip) {
            const double* ap = a_buf.data() + ip * kMR * kc;
            const index_t i0 = ic + ip * kMR;
            const index_t rows = std::min(kMR, ic + mc - i0);
            microkernel(kc, alpha, ap, bp, c, i0, j0, rows, cols);
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<ColumnStripe> partition_column_stripes(index_t n,
                                                   index_t max_stripes) {
  LAMB_CHECK(n >= 0, "stripe partition: negative range");
  LAMB_CHECK(max_stripes >= 1, "stripe partition: need at least one stripe");
  std::vector<ColumnStripe> stripes;
  if (n == 0) {
    return stripes;
  }
  // Distribute whole kNR blocks, not rounded-up per-stripe widths: rounding
  // `ceil(n / stripes)` up to kNR used to oversize early stripes and leave
  // trailing stripes empty (n = 65, 8 workers gave 2 of the 9 blocks to
  // stripe 0 and none to stripes 5..7). The remainder blocks go to the
  // TRAILING stripes so the clipped final panel lands in a stripe that also
  // carries an extra block — that keeps column widths within kNR of each
  // other in every case.
  const index_t blocks = (n + kNR - 1) / kNR;
  const index_t count = std::min(max_stripes, blocks);
  const index_t per = blocks / count;
  const index_t extra = blocks % count;
  stripes.reserve(static_cast<std::size_t>(count));
  index_t block = 0;
  for (index_t s = 0; s < count; ++s) {
    const index_t take = per + (s >= count - extra ? 1 : 0);
    stripes.push_back(ColumnStripe{block * kNR,
                                   std::min(n, (block + take) * kNR)});
    block += take;
  }
  return stripes;
}

void gemm(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c,
          const GemmOptions& opts) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a ? a.rows() : a.cols();
  LAMB_CHECK((trans_a ? a.cols() : a.rows()) == m, "gemm: A shape mismatch");
  LAMB_CHECK((trans_b ? b.cols() : b.rows()) == k, "gemm: B shape mismatch");
  LAMB_CHECK((trans_b ? b.rows() : b.cols()) == n, "gemm: B cols mismatch");

  if (m == 0 || n == 0) {
    return;
  }
  if (k == 0 || alpha == 0.0) {
    scale_c(c, beta);
    return;
  }

  switch (select_gemm_variant(m, n, k)) {
    case GemmVariant::kNaive:
      ref_gemm(trans_a, trans_b, alpha, a, b, beta, c);
      return;
    case GemmVariant::kSmallK:
      scale_c(c, beta);
      gemm_small_k(trans_a, trans_b, alpha, a, b, c);
      return;
    case GemmVariant::kBlocked:
      break;
  }

  scale_c(c, beta);
  parallel::ThreadPool* pool = opts.pool;
  if (pool == nullptr || pool->size() == 1 || n < 2 * kNR) {
    gemm_blocked_range(trans_a, trans_b, alpha, a, b, c, opts.blocks, 0, n);
    return;
  }

  // Parallelise over disjoint column stripes; each stripe owns its packing
  // buffers and a disjoint part of C, so no synchronisation is needed.
  const std::vector<ColumnStripe> stripes =
      partition_column_stripes(n, static_cast<index_t>(pool->size()));
  pool->parallel_for(static_cast<std::ptrdiff_t>(stripes.size()),
                     [&](std::ptrdiff_t s_begin, std::ptrdiff_t s_end) {
    for (std::ptrdiff_t s = s_begin; s < s_end; ++s) {
      const ColumnStripe& stripe = stripes[static_cast<std::size_t>(s)];
      gemm_blocked_range(trans_a, trans_b, alpha, a, b, c, opts.blocks,
                         stripe.begin, stripe.end);
    }
  });
}

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c,
            const GemmOptions& opts) {
  gemm(false, false, 1.0, a, b, 0.0, c, opts);
}

}  // namespace lamb::blas
