// AVX-512F 16x8 microkernel. Compiled with -mavx512f (see CMakeLists.txt);
// only ever *called* when CPUID reports AVX-512F.
//
// Geometry: MR = 16 rows (two zmm vectors along the contiguous column-major
// C columns), NR = 8 columns: 16 zmm accumulators + 2 A vectors + 1 B
// broadcast out of 32 architectural registers, with 16 independent FMA
// chains covering the FMA latency on both ports.
#include <immintrin.h>

#include "blas/microkernel_tiers.hpp"

namespace lamb::blas {

namespace {

constexpr la::index_t kAvx512MR = 16;
constexpr la::index_t kAvx512NR = 8;

void avx512_kernel(la::index_t kc, double alpha, const double* a_panel,
                   const double* b_panel, double beta, double* c,
                   la::index_t ldc) {
  __m512d acc_lo[kAvx512NR];
  __m512d acc_hi[kAvx512NR];
  for (int j = 0; j < kAvx512NR; ++j) {
    acc_lo[j] = _mm512_setzero_pd();
    acc_hi[j] = _mm512_setzero_pd();
  }

  const double* a = a_panel;
  const double* b = b_panel;
  for (la::index_t p = 0; p < kc; ++p) {
    const __m512d a0 = _mm512_loadu_pd(a);
    const __m512d a1 = _mm512_loadu_pd(a + 8);
    for (int j = 0; j < kAvx512NR; ++j) {
      const __m512d bj = _mm512_set1_pd(b[j]);
      acc_lo[j] = _mm512_fmadd_pd(a0, bj, acc_lo[j]);
      acc_hi[j] = _mm512_fmadd_pd(a1, bj, acc_hi[j]);
    }
    a += kAvx512MR;
    b += kAvx512NR;
  }

  const __m512d valpha = _mm512_set1_pd(alpha);
  if (beta == 0.0) {
    for (int j = 0; j < kAvx512NR; ++j) {
      double* cj = c + j * ldc;
      _mm512_storeu_pd(cj, _mm512_mul_pd(valpha, acc_lo[j]));
      _mm512_storeu_pd(cj + 8, _mm512_mul_pd(valpha, acc_hi[j]));
    }
  } else if (beta == 1.0) {
    for (int j = 0; j < kAvx512NR; ++j) {
      double* cj = c + j * ldc;
      _mm512_storeu_pd(
          cj, _mm512_fmadd_pd(valpha, acc_lo[j], _mm512_loadu_pd(cj)));
      _mm512_storeu_pd(
          cj + 8, _mm512_fmadd_pd(valpha, acc_hi[j], _mm512_loadu_pd(cj + 8)));
    }
  } else {
    const __m512d vbeta = _mm512_set1_pd(beta);
    for (int j = 0; j < kAvx512NR; ++j) {
      double* cj = c + j * ldc;
      _mm512_storeu_pd(cj,
                       _mm512_fmadd_pd(vbeta, _mm512_loadu_pd(cj),
                                       _mm512_mul_pd(valpha, acc_lo[j])));
      _mm512_storeu_pd(cj + 8,
                       _mm512_fmadd_pd(vbeta, _mm512_loadu_pd(cj + 8),
                                       _mm512_mul_pd(valpha, acc_hi[j])));
    }
  }
}

constexpr Microkernel kAvx512{"avx512", kAvx512MR, kAvx512NR, avx512_kernel};

}  // namespace

const Microkernel& detail_avx512_microkernel() { return kAvx512; }

}  // namespace lamb::blas
