// Reference (naive triple-loop) kernels. These are the correctness oracle for
// the optimised substrate: slow, simple, and obviously right.
#pragma once

#include "la/matrix.hpp"

namespace lamb::blas {

/// C := alpha * op(A) * op(B) + beta * C, op = transpose when the flag is set.
/// op(A) is m x k, op(B) is k x n, C is m x n.
void ref_gemm(bool trans_a, bool trans_b, double alpha, la::ConstMatrixView a,
              la::ConstMatrixView b, double beta, la::MatrixView c);

/// Lower triangle of C := alpha * A * A^T + beta * C; A is n x k, C is n x n.
/// Only the lower triangle of C is referenced or written.
void ref_syrk(double alpha, la::ConstMatrixView a, double beta,
              la::MatrixView c);

/// C := alpha * A * B + beta * C where A is symmetric (m x m) with only its
/// lower triangle stored/referenced; B is m x n ("left, lower" SYMM).
void ref_symm(double alpha, la::ConstMatrixView a, la::ConstMatrixView b,
              double beta, la::MatrixView c);

}  // namespace lamb::blas
