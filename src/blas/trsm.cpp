#include "blas/trsm.hpp"

#include <algorithm>
#include <vector>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "support/check.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

constexpr index_t kTrsmBlock = 64;

/// Unblocked solve op(Lkk) * X = B, column by column via TRSV.
void solve_diag_left(bool trans, ConstMatrixView lkk, MatrixView b) {
  for (index_t j = 0; j < b.cols(); ++j) {
    trsv(/*lower=*/true, trans, lkk,
         std::span<double>(&b(0, j), static_cast<std::size_t>(b.rows())));
  }
}

/// Unblocked solve X * op(Lkk) = B, row by row: X * op(L) = B is equivalent
/// to op(L)^T * x_row = b_row for each row.
void solve_diag_right(bool trans, ConstMatrixView lkk, MatrixView b) {
  std::vector<double> row(static_cast<std::size_t>(b.cols()));
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      row[static_cast<std::size_t>(j)] = b(i, j);
    }
    // (x^T op(L) = b^T)  <=>  op(L)^T x = b; transposing flips the op flag.
    trsv(/*lower=*/true, !trans, lkk, row);
    for (index_t j = 0; j < b.cols(); ++j) {
      b(i, j) = row[static_cast<std::size_t>(j)];
    }
  }
}

}  // namespace

void trsm_left_lower(bool trans, double alpha, ConstMatrixView l,
                     MatrixView b, const GemmOptions& opts) {
  const index_t m = b.rows();
  LAMB_CHECK(l.rows() == m && l.cols() == m, "trsm: L must be m x m");
  scale_matrix(b, alpha);
  if (m == 0 || b.cols() == 0) {
    return;
  }

  const index_t nb = kTrsmBlock;
  if (!trans) {
    // Forward substitution over row blocks.
    for (index_t k = 0; k < m; k += nb) {
      const index_t kw = std::min(nb, m - k);
      solve_diag_left(false, l.block(k, k, kw, kw), b.block(k, 0, kw, b.cols()));
      if (k + kw < m) {
        // B_rest -= L(rest, k) * X_k.
        gemm(false, false, -1.0, l.block(k + kw, k, m - k - kw, kw),
             b.block(k, 0, kw, b.cols()), 1.0,
             b.block(k + kw, 0, m - k - kw, b.cols()), opts);
      }
    }
  } else {
    // L^T is upper triangular: backward substitution over row blocks.
    for (index_t k_end = m; k_end > 0;) {
      const index_t kw = std::min(nb, k_end);
      const index_t k = k_end - kw;
      solve_diag_left(true, l.block(k, k, kw, kw),
                      b.block(k, 0, kw, b.cols()));
      if (k > 0) {
        // B_above -= L(k:, 0:k)^T * X_k.
        gemm(true, false, -1.0, l.block(k, 0, kw, k),
             b.block(k, 0, kw, b.cols()), 1.0, b.block(0, 0, k, b.cols()),
             opts);
      }
      k_end = k;
    }
  }
}

void trsm_right_lower(bool trans, double alpha, ConstMatrixView l,
                      MatrixView b, const GemmOptions& opts) {
  const index_t n = b.cols();
  LAMB_CHECK(l.rows() == n && l.cols() == n, "trsm: L must be n x n");
  scale_matrix(b, alpha);
  if (n == 0 || b.rows() == 0) {
    return;
  }

  const index_t nb = kTrsmBlock;
  if (!trans) {
    // X * L = B with L lower: column block j depends on later blocks, so
    // sweep backwards.
    for (index_t k_end = n; k_end > 0;) {
      const index_t kw = std::min(nb, k_end);
      const index_t k = k_end - kw;
      solve_diag_right(false, l.block(k, k, kw, kw),
                       b.block(0, k, b.rows(), kw));
      if (k > 0) {
        // B(:, 0:k) -= X_k * L(k:, 0:k).
        gemm(false, false, -1.0, b.block(0, k, b.rows(), kw),
             l.block(k, 0, kw, k), 1.0, b.block(0, 0, b.rows(), k), opts);
      }
      k_end = k;
    }
  } else {
    // X * L^T = B with L^T upper: forward sweep over column blocks.
    for (index_t k = 0; k < n; k += nb) {
      const index_t kw = std::min(nb, n - k);
      solve_diag_right(true, l.block(k, k, kw, kw),
                       b.block(0, k, b.rows(), kw));
      if (k + kw < n) {
        // B(:, rest) -= X_k * L(rest, k)^T.
        gemm(false, true, -1.0, b.block(0, k, b.rows(), kw),
             l.block(k + kw, k, n - k - kw, kw), 1.0,
             b.block(0, k + kw, b.rows(), n - k - kw), opts);
      }
    }
  }
}

}  // namespace lamb::blas
