#include "blas/syrk.hpp"

#include <algorithm>

#include "blas/ref_blas.hpp"
#include "blas/variant.hpp"

#include "la/matrix.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

constexpr index_t kSyrkBlock = 96;
// Below this size the plain triangular loop beats the detour through GEMM.
// Tied to the GEMM naive crossover so every diagonal block large enough for
// the dispatched microkernel path actually reaches it.
constexpr index_t kSyrkNaiveLimit = kNaiveLimit;

/// Triangular update of a diagonal block: lower(Cb) := alpha * Ab * Ab^T +
/// beta * lower(Cb). For all but tiny blocks the full product is formed with
/// the fast GEMM path and its lower triangle copied out — the extra FLOPs on
/// the (small) diagonal block are far cheaper than running a naive loop.
void syrk_diag_block(double alpha, ConstMatrixView ab, double beta,
                     MatrixView cb, const blas::GemmOptions& opts) {
  const index_t nb = cb.rows();
  if (nb <= kSyrkNaiveLimit) {
    ref_syrk(alpha, ab, beta, cb);
    return;
  }
  la::Matrix full(nb, nb);
  blas::gemm(false, true, alpha, ab, ab, 0.0, full.view(), opts);
  for (index_t j = 0; j < nb; ++j) {
    for (index_t i = j; i < nb; ++i) {
      const double prev = (beta == 0.0) ? 0.0 : beta * cb(i, j);
      cb(i, j) = prev + full(i, j);
    }
  }
}

}  // namespace

void syrk(double alpha, ConstMatrixView a, double beta, MatrixView c,
          const GemmOptions& opts) {
  const index_t n = c.rows();
  LAMB_CHECK(c.cols() == n, "syrk: C must be square");
  LAMB_CHECK(a.rows() == n, "syrk: A rows mismatch");
  const index_t k = a.cols();

  if (n == 0) {
    return;
  }
  if (n <= kSyrkBlock) {
    syrk_diag_block(alpha, a, beta, c, opts);
    return;
  }

  for (index_t jb = 0; jb < n; jb += kSyrkBlock) {
    const index_t nb = std::min(kSyrkBlock, n - jb);
    // Diagonal block: triangular update.
    syrk_diag_block(alpha, a.block(jb, 0, nb, k), beta,
                    c.block(jb, jb, nb, nb), opts);
    // Below-diagonal blocks: C(ib, jb) := alpha A_i A_j^T + beta C(ib, jb).
    for (index_t ib = jb + nb; ib < n; ib += kSyrkBlock) {
      const index_t mb = std::min(kSyrkBlock, n - ib);
      gemm(false, true, alpha, a.block(ib, 0, mb, k), a.block(jb, 0, nb, k),
           beta, c.block(ib, jb, mb, nb), opts);
    }
  }
}

}  // namespace lamb::blas
