#include "blas/level1.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace lamb::blas {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  LAMB_CHECK(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  LAMB_CHECK(x.size() == y.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += x[i] * y[i];
  }
  return s;
}

double nrm2(std::span<const double> x) {
  // Two-pass scaled norm: immune to overflow/underflow of x[i]^2.
  double scale = 0.0;
  for (double v : x) {
    scale = std::max(scale, std::abs(v));
  }
  if (scale == 0.0) {
    return 0.0;
  }
  double ssq = 0.0;
  for (double v : x) {
    const double r = v / scale;
    ssq += r * r;
  }
  return scale * std::sqrt(ssq);
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) {
    v *= alpha;
  }
}

double asum(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) {
    s += std::abs(v);
  }
  return s;
}

std::size_t iamax(std::span<const double> x) {
  LAMB_CHECK(!x.empty(), "iamax: empty vector");
  std::size_t best = 0;
  double best_abs = std::abs(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double a = std::abs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

void swap(std::span<double> x, std::span<double> y) {
  LAMB_CHECK(x.size() == y.size(), "swap: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::swap(x[i], y[i]);
  }
}

void copy(std::span<const double> x, std::span<double> y) {
  LAMB_CHECK(x.size() == y.size(), "copy: length mismatch");
  std::copy(x.begin(), x.end(), y.begin());
}

void scale_matrix(la::MatrixView a, double s) {
  if (s == 1.0 || a.rows() == 0) {
    return;
  }
  for (la::index_t j = 0; j < a.cols(); ++j) {
    double* col = &a(0, j);
    if (s == 0.0) {
      std::fill(col, col + a.rows(), 0.0);
    } else {
      for (la::index_t i = 0; i < a.rows(); ++i) {
        col[i] *= s;
      }
    }
  }
}

}  // namespace lamb::blas
