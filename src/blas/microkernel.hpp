// Register-blocked microkernel family with CPUID runtime dispatch.
//
// Each kernel computes one mr x nr tile of C directly from packed panels:
//
//   C(0:mr, 0:nr) := beta * C + alpha * sum_p a_panel(:, p) * b_panel(p, :)
//
// writing C through a raw (pointer, leading-dimension) pair — no per-element
// MatrixView calls on the hot path. `beta == 0` is a pure store (C is never
// read, so uninitialised/garbage C is fine), `beta == 1` an accumulate, any
// other beta a fused scale-and-add. The blocked GEMM folds its beta into the
// first kc-slab's store through this path instead of pre-scaling C.
//
// Tiers (best supported one wins, resolved once at first use):
//   scalar   4 x 8, portable C++, always available — the debugging/CI anchor
//   avx2     8 x 6, AVX2+FMA, 12 ymm accumulators (compiled on x86-64)
//   avx512  16 x 8, AVX-512F, 16 zmm accumulators (compiled on x86-64)
//
// Dispatch honours the LAMB_KERNEL environment variable ("scalar", "avx2",
// "avx512", or "auto"); an unavailable or unknown choice warns on stderr and
// falls back to auto. Tests can pin the tier with force_microkernel().
#pragma once

#include <string_view>
#include <vector>

#include "la/matrix.hpp"

namespace lamb::blas {

/// Upper bounds over every tier's geometry (sizes the fringe tile buffer).
inline constexpr la::index_t kMaxMR = 16;
inline constexpr la::index_t kMaxNR = 8;

/// Full-tile kernel: C(0:mr, 0:nr) := beta * C + alpha * A_panel B_panel,
/// with C column j at `c + j * ldc`.
using microkernel_fn = void (*)(la::index_t kc, double alpha,
                                const double* a_panel, const double* b_panel,
                                double beta, double* c, la::index_t ldc);

struct Microkernel {
  const char* name;  ///< dispatch tier name ("scalar", "avx2", "avx512")
  la::index_t mr;    ///< micro-tile rows (A-panel packing width)
  la::index_t nr;    ///< micro-tile cols (B-panel packing width)
  microkernel_fn fn;
};

/// The portable fallback; always available.
const Microkernel& scalar_microkernel();

/// Kernels compiled into this build AND supported by this CPU, ordered
/// worst-to-best (scalar first). Never empty.
const std::vector<const Microkernel*>& available_microkernels();

/// Resolve a LAMB_KERNEL-style choice: "" or "auto" picks the best available
/// tier; a tier name picks that tier if available. Returns nullptr for an
/// unknown or unavailable choice.
const Microkernel* select_microkernel(std::string_view choice);

/// The kernel the blocked GEMM uses. Resolved once from LAMB_KERNEL / CPUID
/// on first use and cached; thread-safe.
const Microkernel& active_microkernel();

/// Test hook: pin the active kernel (nullptr re-resolves from the
/// environment). Not intended for concurrent use with in-flight GEMMs.
void force_microkernel(const Microkernel* kernel);

/// Fringe tile: computes the full mr x nr tile into a stack buffer and
/// applies only the valid (rows x cols) corner to C with the same beta
/// semantics as the full-tile path.
void microkernel_fringe(const Microkernel& mk, la::index_t kc, double alpha,
                        const double* a_panel, const double* b_panel,
                        double beta, double* c, la::index_t ldc,
                        la::index_t rows, la::index_t cols);

}  // namespace lamb::blas
