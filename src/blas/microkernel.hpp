// Register-blocked MR x NR microkernel operating on packed panels.
#pragma once

#include "blas/packing.hpp"
#include "la/matrix.hpp"

namespace lamb::blas {

/// acc := sum over kc of a_panel(kMR-wide) x b_panel(kNR-wide); then
/// C(i0.., j0..) += alpha * acc for the valid (rows x cols) corner.
/// `a_panel` points at one packed MR-micropanel, `b_panel` at one packed
/// NR-micropanel, both of depth kc.
void microkernel(la::index_t kc, double alpha, const double* a_panel,
                 const double* b_panel, la::MatrixView c, la::index_t i0,
                 la::index_t j0, la::index_t rows, la::index_t cols);

}  // namespace lamb::blas
