// Symmetric matrix multiply ("left, lower"): C := alpha * A * B + beta * C
// where A is m x m symmetric with only the lower triangle stored.
//
// Implemented as a blocked sweep: strictly-lower blocks of A are used twice
// (once as-is, once transposed), diagonal blocks through a symmetric
// micro-path. The extra transposed traversals give SYMM a lower efficiency
// than GEMM at small-to-medium m, as in the paper's Figure 1.
#pragma once

#include "blas/gemm.hpp"
#include "la/matrix.hpp"

namespace lamb::blas {

void symm(double alpha, la::ConstMatrixView a, la::ConstMatrixView b,
          double beta, la::MatrixView c, const GemmOptions& opts = {});

}  // namespace lamb::blas
