#include "blas/symm.hpp"

#include <algorithm>

#include "blas/level1.hpp"
#include "blas/ref_blas.hpp"
#include "blas/variant.hpp"

namespace lamb::blas {

namespace {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

constexpr index_t kSymmBlock = 96;
// Below this size the plain symmetric loop beats materialising the block.
// Tied to the GEMM naive crossover so the dispatched-microkernel path takes
// over at the same shape the GEMM variant selection hands work to it.
constexpr index_t kSymmNaiveLimit = kNaiveLimit;

/// C_block += alpha * A_diag * B_block with A_diag symmetric, lower stored.
/// Beyond tiny blocks the symmetric diagonal block is materialised in full
/// (an O(nb^2) copy) so the O(nb^2 * n) product can run through the fast
/// GEMM path.
void symm_diag_block(double alpha, ConstMatrixView a, ConstMatrixView b,
                     MatrixView c, const blas::GemmOptions& opts) {
  const index_t nb = a.rows();
  if (nb <= kSymmNaiveLimit) {
    ref_symm(alpha, a, b, 1.0, c);
    return;
  }
  la::Matrix full(nb, nb);
  for (index_t j = 0; j < nb; ++j) {
    for (index_t i = j; i < nb; ++i) {
      full(i, j) = a(i, j);
      full(j, i) = a(i, j);
    }
  }
  blas::gemm(false, false, alpha, full.view(), b, 1.0, c, opts);
}

}  // namespace

void symm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c, const GemmOptions& opts) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  LAMB_CHECK(a.rows() == m && a.cols() == m, "symm: A must be m x m");
  LAMB_CHECK(b.rows() == m && b.cols() == n, "symm: B shape mismatch");

  if (m == 0 || n == 0) {
    return;
  }

  scale_matrix(c, beta);
  if (m <= kSymmBlock) {
    symm_diag_block(alpha, a, b, c, opts);
    return;
  }

  for (index_t kb = 0; kb < m; kb += kSymmBlock) {
    const index_t kw = std::min(kSymmBlock, m - kb);
    const ConstMatrixView b_block = b.block(kb, 0, kw, n);
    for (index_t ib = 0; ib < m; ib += kSymmBlock) {
      const index_t iw = std::min(kSymmBlock, m - ib);
      MatrixView c_block = c.block(ib, 0, iw, n);
      if (ib > kb) {
        // Strictly-lower stored block used directly.
        gemm(false, false, alpha, a.block(ib, kb, iw, kw), b_block, 1.0,
             c_block, opts);
      } else if (ib < kb) {
        // Mirror: A(ib, kb) = A(kb, ib)^T, fetched from the lower triangle.
        gemm(true, false, alpha, a.block(kb, ib, kw, iw), b_block, 1.0,
             c_block, opts);
      } else {
        symm_diag_block(alpha, a.block(ib, kb, iw, kw), b_block, c_block,
                        opts);
      }
    }
  }
}

}  // namespace lamb::blas
