// General matrix multiply: C := alpha * op(A) * op(B) + beta * C.
//
// Three internal variants (see blas/variant.hpp):
//   - naive     : tiny problems, plain loops;
//   - small-k   : unpacked rank-k update for shallow inner dimensions;
//   - blocked   : BLIS-style packed, cache-blocked path driven by the
//                 runtime-dispatched MR x NR register microkernel
//                 (blas/microkernel.hpp), with beta folded into the first
//                 kc-slab's store instead of a separate scaling sweep.
//
// With a ThreadPool the blocked path picks between two work splits:
//   - column stripes : disjoint kNR-aligned column ranges of C, one packing
//                      pipeline per worker (wide-n shapes);
//   - row blocks     : when n is too narrow to feed every worker a stripe
//                      but m is tall, workers split the mc row blocks of
//                      each (jc, pc) slab and share its packed B panel
//                      (the tall-skinny shapes the chain/AATB families
//                      generate).
#pragma once

#include <optional>
#include <vector>

#include "blas/packing.hpp"
#include "blas/variant.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace lamb::blas {

struct GemmOptions {
  BlockSizes blocks;
  parallel::ThreadPool* pool = nullptr;  ///< null -> serial
  /// Bypass select_gemm_variant() and force one internal variant — used by
  /// bm_kernels to measure the crossovers the thresholds are tuned against,
  /// and by experiments correlating variant switches with region boundaries.
  std::optional<GemmVariant> force_variant;
};

/// One worker's contiguous column range [begin, end) of C.
struct ColumnStripe {
  la::index_t begin = 0;
  la::index_t end = 0;

  friend bool operator==(const ColumnStripe&, const ColumnStripe&) = default;
};

/// Balanced `width`-aligned partition of [0, n) into at most `max_stripes`
/// non-empty stripes: microkernel blocks are distributed as evenly as
/// possible (stripe widths differ by at most `width`), every stripe boundary
/// except the last is a `width` multiple, and the stripes exactly cover
/// [0, n). This is the parallel GEMM column split, exposed for direct
/// testing; `width` defaults to the canonical kNR panel width and is set to
/// the active microkernel's nr by gemm().
std::vector<ColumnStripe> partition_column_stripes(la::index_t n,
                                                   la::index_t max_stripes,
                                                   la::index_t width = kNR);

/// How the blocked path would split work for this shape on `pool_size`
/// participants; pure function of the shape, exposed for testing.
enum class GemmParallelMode {
  kSerial,         ///< one participant (or nothing to split)
  kColumnStripes,  ///< disjoint column ranges, one packing pipeline each
  kRowBlocks,      ///< shared packed B per (jc, pc) slab, workers split rows
};
GemmParallelMode select_gemm_parallel_mode(la::index_t m, la::index_t n,
                                           std::size_t pool_size,
                                           const BlockSizes& bs,
                                           la::index_t nr);

/// op(A) is m x k, op(B) is k x n, C is m x n; op = transpose when flagged.
void gemm(bool trans_a, bool trans_b, double alpha, la::ConstMatrixView a,
          la::ConstMatrixView b, double beta, la::MatrixView c,
          const GemmOptions& opts = {});

/// Convenience: C := A * B (no transposes, alpha = 1, beta = 0).
void matmul(la::ConstMatrixView a, la::ConstMatrixView b, la::MatrixView c,
            const GemmOptions& opts = {});

}  // namespace lamb::blas
