// General matrix multiply: C := alpha * op(A) * op(B) + beta * C.
//
// Three internal variants (see blas/variant.hpp):
//   - naive     : tiny problems, plain loops;
//   - small-k   : unpacked rank-k update for shallow inner dimensions;
//   - blocked   : BLIS-style packed, cache-blocked path with an MR x NR
//                 register microkernel, optionally parallelised over column
//                 blocks with a ThreadPool.
#pragma once

#include <vector>

#include "blas/packing.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace lamb::blas {

struct GemmOptions {
  BlockSizes blocks;
  parallel::ThreadPool* pool = nullptr;  ///< null -> serial
};

/// One worker's contiguous column range [begin, end) of C.
struct ColumnStripe {
  la::index_t begin = 0;
  la::index_t end = 0;

  friend bool operator==(const ColumnStripe&, const ColumnStripe&) = default;
};

/// Balanced kNR-aligned partition of [0, n) into at most `max_stripes`
/// non-empty stripes: microkernel blocks are distributed as evenly as
/// possible (stripe widths differ by at most kNR), every stripe boundary
/// except the last is a kNR multiple, and the stripes exactly cover [0, n).
/// This is the parallel GEMM work split, exposed for direct testing.
std::vector<ColumnStripe> partition_column_stripes(la::index_t n,
                                                   la::index_t max_stripes);

/// op(A) is m x k, op(B) is k x n, C is m x n; op = transpose when flagged.
void gemm(bool trans_a, bool trans_b, double alpha, la::ConstMatrixView a,
          la::ConstMatrixView b, double beta, la::MatrixView c,
          const GemmOptions& opts = {});

/// Convenience: C := A * B (no transposes, alpha = 1, beta = 0).
void matmul(la::ConstMatrixView a, la::ConstMatrixView b, la::MatrixView c,
            const GemmOptions& opts = {});

}  // namespace lamb::blas
