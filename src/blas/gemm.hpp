// General matrix multiply: C := alpha * op(A) * op(B) + beta * C.
//
// Three internal variants (see blas/variant.hpp):
//   - naive     : tiny problems, plain loops;
//   - small-k   : unpacked rank-k update for shallow inner dimensions;
//   - blocked   : BLIS-style packed, cache-blocked path with an MR x NR
//                 register microkernel, optionally parallelised over column
//                 blocks with a ThreadPool.
#pragma once

#include "blas/packing.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace lamb::blas {

struct GemmOptions {
  BlockSizes blocks;
  parallel::ThreadPool* pool = nullptr;  ///< null -> serial
};

/// op(A) is m x k, op(B) is k x n, C is m x n; op = transpose when flagged.
void gemm(bool trans_a, bool trans_b, double alpha, la::ConstMatrixView a,
          la::ConstMatrixView b, double beta, la::MatrixView c,
          const GemmOptions& opts = {});

/// Convenience: C := A * B (no transposes, alpha = 1, beta = 0).
void matmul(la::ConstMatrixView a, la::ConstMatrixView b, la::MatrixView c,
            const GemmOptions& opts = {});

}  // namespace lamb::blas
