// Internal: descriptors of the SIMD microkernel tiers. Each is defined in
// its own translation unit compiled with the matching -m flags (see
// CMakeLists.txt); the dispatcher references them only when the build
// defines LAMB_HAVE_<TIER>_KERNEL, so builds for other targets simply omit
// the files.
#pragma once

#include "blas/microkernel.hpp"

namespace lamb::blas {

const Microkernel& detail_avx2_microkernel();    // microkernel_avx2.cpp
const Microkernel& detail_avx512_microkernel();  // microkernel_avx512.cpp

}  // namespace lamb::blas
