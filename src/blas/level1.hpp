// Level-1 BLAS: vector-vector operations. Small, but part of any credible
// BLAS substrate and used by the level-2/3 kernels' edge paths and tests.
#pragma once

#include <span>

#include "la/matrix.hpp"

namespace lamb::blas {

/// y := alpha * x + y.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// <x, y>.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm with overflow-safe scaling.
double nrm2(std::span<const double> x);

/// x := alpha * x.
void scal(double alpha, std::span<double> x);

/// Sum of absolute values.
double asum(std::span<const double> x);

/// Index of the element with the largest absolute value (first on ties);
/// returns 0 for an empty vector per BLAS convention... the span must be
/// non-empty here — we check instead of guessing.
std::size_t iamax(std::span<const double> x);

/// y <-> x.
void swap(std::span<double> x, std::span<double> y);

/// y := x.
void copy(std::span<const double> x, std::span<double> y);

/// A := s * A over a matrix view, with BLAS beta semantics: s == 0 stores
/// exact zeros without reading A (garbage/NaN content is overwritten) and
/// s == 1 is a no-op. Shared by the level-3 kernels' scaling edge paths.
void scale_matrix(la::MatrixView a, double s);

}  // namespace lamb::blas
