// Symmetric rank-k update: lower triangle of C := alpha * A * A^T + beta * C.
//
// Implemented as a blocked sweep over the lower triangle of C: off-diagonal
// blocks are ordinary GEMMs (A_i * A_j^T), diagonal blocks use a triangular
// update. Compared to a full GEMM of the same product, SYRK does roughly half
// the FLOPs but at a lower rate for small/skinny problems — the profile shape
// the paper's A*A^T*B anomalies hinge on.
#pragma once

#include "blas/gemm.hpp"
#include "la/matrix.hpp"

namespace lamb::blas {

/// A is n x k; only the lower triangle of the n x n C is referenced/written.
void syrk(double alpha, la::ConstMatrixView a, double beta, la::MatrixView c,
          const GemmOptions& opts = {});

}  // namespace lamb::blas
