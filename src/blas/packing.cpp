#include "blas/packing.hpp"

namespace lamb::blas {

using la::ConstMatrixView;
using la::index_t;

void pack_a(bool trans, ConstMatrixView a, index_t ic, index_t pc, index_t mc,
            index_t kc, std::vector<double>& buf) {
  const index_t panels = (mc + kMR - 1) / kMR;
  buf.assign(static_cast<std::size_t>(panels * kMR * kc), 0.0);
  double* dst = buf.data();
  for (index_t ip = 0; ip < panels; ++ip) {
    const index_t i0 = ip * kMR;
    const index_t rows = std::min(kMR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t i = 0; i < rows; ++i) {
        const index_t gi = ic + i0 + i;
        const index_t gp = pc + p;
        dst[p * kMR + i] = trans ? a(gp, gi) : a(gi, gp);
      }
      // rows..kMR-1 stay zero from assign().
    }
    dst += kMR * kc;
  }
}

void pack_b(bool trans, ConstMatrixView b, index_t pc, index_t jc, index_t kc,
            index_t nc, std::vector<double>& buf) {
  const index_t panels = (nc + kNR - 1) / kNR;
  buf.assign(static_cast<std::size_t>(panels * kNR * kc), 0.0);
  double* dst = buf.data();
  for (index_t jp = 0; jp < panels; ++jp) {
    const index_t j0 = jp * kNR;
    const index_t cols = std::min(kNR, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t j = 0; j < cols; ++j) {
        const index_t gj = jc + j0 + j;
        const index_t gp = pc + p;
        dst[p * kNR + j] = trans ? b(gj, gp) : b(gp, gj);
      }
    }
    dst += kNR * kc;
  }
}

}  // namespace lamb::blas
