#include "blas/packing.hpp"

#include <cstring>

namespace lamb::blas {

using la::ConstMatrixView;
using la::index_t;

namespace {

/// Grow-only resize: keeps existing capacity (and contents) so packing a
/// stream of blocks allocates at most once. The packed region is fully
/// (re)written by the callers, so no zero-fill of reused storage is needed.
void ensure_size(std::vector<double>& buf, index_t n) {
  if (static_cast<index_t>(buf.size()) < n) {
    buf.resize(static_cast<std::size_t>(n));
  }
}

}  // namespace

void pack_a(bool trans, ConstMatrixView a, index_t ic, index_t pc, index_t mc,
            index_t kc, index_t mr, std::vector<double>& buf) {
  const index_t panels = (mc + mr - 1) / mr;
  ensure_size(buf, panels * mr * kc);
  double* dst = buf.data();
  for (index_t ip = 0; ip < panels; ++ip) {
    const index_t i0 = ip * mr;
    const index_t rows = std::min(mr, mc - i0);
    if (!trans) {
      // Source column (ic+i0 .., pc+p) is contiguous: bulk-copy `rows`
      // doubles per k step, then pad the fringe rows of a partial panel.
      for (index_t p = 0; p < kc; ++p) {
        const double* src = &a(ic + i0, pc + p);
        double* col = dst + p * mr;
        std::memcpy(col, src, static_cast<std::size_t>(rows) * sizeof(double));
        for (index_t i = rows; i < mr; ++i) {
          col[i] = 0.0;
        }
      }
    } else {
      // op(A) = A^T: source rows become panel rows; strided gather.
      for (index_t p = 0; p < kc; ++p) {
        double* col = dst + p * mr;
        for (index_t i = 0; i < rows; ++i) {
          col[i] = a(pc + p, ic + i0 + i);
        }
        for (index_t i = rows; i < mr; ++i) {
          col[i] = 0.0;
        }
      }
    }
    dst += mr * kc;
  }
}

void pack_b(bool trans, ConstMatrixView b, index_t pc, index_t jc, index_t kc,
            index_t nc, index_t nr, std::vector<double>& buf) {
  const index_t panels = (nc + nr - 1) / nr;
  ensure_size(buf, panels * nr * kc);
  double* dst = buf.data();
  for (index_t jp = 0; jp < panels; ++jp) {
    const index_t j0 = jp * nr;
    const index_t cols = std::min(nr, nc - j0);
    if (trans) {
      // op(B) = B^T: element (p, j) comes from b(jc+j, pc+p); the p-run is
      // a contiguous source column per j, so walk j outer / p inner.
      for (index_t j = 0; j < cols; ++j) {
        const double* src = &b(jc + j0 + j, pc);
        const index_t ldb = b.ld();
        for (index_t p = 0; p < kc; ++p) {
          dst[p * nr + j] = src[p * ldb];
        }
      }
    } else {
      // Source column (pc.., jc+j0+j) is contiguous over p per j.
      for (index_t j = 0; j < cols; ++j) {
        const double* src = &b(pc, jc + j0 + j);
        for (index_t p = 0; p < kc; ++p) {
          dst[p * nr + j] = src[p];
        }
      }
    }
    if (cols < nr) {
      for (index_t p = 0; p < kc; ++p) {
        for (index_t j = cols; j < nr; ++j) {
          dst[p * nr + j] = 0.0;
        }
      }
    }
    dst += nr * kc;
  }
}

}  // namespace lamb::blas
