// Ordinary least squares — the paper's introductory motivating expression
// beta := (X^T X)^{-1} X^T y, solved end-to-end on the repository's own
// substrate (GEMV + SYRK/GEMM + blocked Cholesky + TRSM).
//
// The Gram matrix X^T X is an instance of the paper's A*A^T dilemma: SYRK
// does roughly half the FLOPs of GEMM, but for small column counts its rate
// is also far lower — so the "obvious" FLOP-minimal choice can lose. This
// example times both choices on the host.
//
// Usage: ./examples/least_squares [--rows=4096] [--cols=64]
#include <cstdio>
#include <vector>

#include "blas/level2.hpp"
#include "la/generators.hpp"
#include "lapack/least_squares.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace lamb;
  const support::Cli cli(argc, argv);
  const auto m = static_cast<la::index_t>(cli.get_int("rows", 4096));
  const auto n = static_cast<la::index_t>(cli.get_int("cols", 64));

  support::Rng rng(cli.get_seed("seed", 1));
  const la::Matrix x = la::random_matrix(m, n, rng);
  std::vector<double> beta_true(static_cast<std::size_t>(n));
  for (double& b : beta_true) {
    b = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  blas::gemv(false, 1.0, x.view(), beta_true, 0.0, y);
  for (double& v : y) {
    v += 0.01 * rng.uniform(-1.0, 1.0);  // measurement noise
  }

  std::printf("least squares: X is %lld x %lld, beta has %lld coefficients\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(n));
  std::printf("normal equations: Gram matrix X'X via SYRK (%lld FLOPs) or "
              "GEMM (%lld FLOPs)\n\n",
              (static_cast<long long>(n) + 1) * n * m,
              2LL * n * n * m);

  for (const auto gram : {lapack::GramKernel::kSyrk,
                          lapack::GramKernel::kGemm}) {
    const char* name =
        gram == lapack::GramKernel::kSyrk ? "syrk" : "gemm";
    const auto result = lapack::solve_ols(x.view(), y, gram);
    double coeff_err = 0.0;
    for (std::size_t i = 0; i < beta_true.size(); ++i) {
      coeff_err = std::max(coeff_err,
                           std::abs(result.coefficients[i] - beta_true[i]));
    }
    std::printf("gram=%s: X'X in %7.3f ms, factor+solve in %7.3f ms, "
                "residual %.4g, max coeff error %.2e\n",
                name, 1e3 * result.gram_seconds, 1e3 * result.solve_seconds,
                lapack::ols_residual_norm(x.view(), result.coefficients, y),
                coeff_err);
  }
  std::printf("\nIf the SYRK path is not faster here despite doing half the "
              "FLOPs, you just witnessed the paper's thesis on your own "
              "machine.\n");
  return 0;
}
