// Quickstart: evaluate a matrix chain X := A*B*C*D the way Linnea/Armadillo/
// Julia would — enumerate the mathematically-equivalent algorithms, pick the
// one with the minimum FLOP count, and execute it on the BLAS substrate.
// Then brute-force all schedules to see whether the FLOP-count discriminant
// actually picked a fastest algorithm on this machine.
//
// Build & run:  ./examples/quickstart [d0 d1 d2 d3 d4]
#include <cstdio>
#include <vector>

#include "chain/chain.hpp"
#include "expr/family.hpp"
#include "la/norms.hpp"
#include "model/cost_model.hpp"
#include "model/executor.hpp"
#include "model/measured_machine.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace lamb;

  // Default instance: a thin-fat-thin chain where parenthesisation matters.
  chain::ChainDims dims = {600, 40, 500, 30, 400};
  if (argc == 6) {
    for (int i = 0; i < 5; ++i) {
      dims[static_cast<std::size_t>(i)] = std::atol(argv[i + 1]);
    }
  }
  std::printf("chain instance (d0..d4) = (%lld, %lld, %lld, %lld, %lld)\n\n",
              static_cast<long long>(dims[0]), static_cast<long long>(dims[1]),
              static_cast<long long>(dims[2]), static_cast<long long>(dims[3]),
              static_cast<long long>(dims[4]));

  // 1. Enumerate all 6 multiplication schedules and their FLOP counts.
  const auto algorithms = chain::enumerate_chain_schedules(dims);
  std::printf("%zu mathematically equivalent algorithms:\n",
              algorithms.size());
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    std::printf("  %zu: %-34s %12s FLOPs\n", i + 1,
                algorithms[i].signature().c_str(),
                support::format_count(algorithms[i].flops()).c_str());
  }

  // 2. The FLOP-count discriminant (what Linnea/Armadillo/Julia use), and
  //    the classic dynamic program that finds the same minimum in O(n^3).
  model::FlopCostModel flop_cost;
  const auto cheapest = model::select_best(algorithms, flop_cost);
  const auto dp = chain::chain_dp(dims);
  std::printf("\nFLOP-minimal schedule: #%zu (%s), %s FLOPs\n",
              cheapest.front() + 1,
              algorithms[cheapest.front()].signature().c_str(),
              support::format_count(dp.min_flops).c_str());
  std::printf("DP parenthesisation:   %s\n", dp.parenthesisation(4).c_str());

  // 3. Execute the selected algorithm on real matrices and validate.
  support::Rng rng(42);
  expr::ChainFamily family(4);
  expr::Instance inst(dims.begin(), dims.end());
  const auto externals = family.make_externals(inst, rng);
  const la::Matrix x = model::execute(algorithms[cheapest.front()], externals);
  std::printf("\nexecuted on the lamb::blas substrate: X is %lld x %lld, "
              "||X||_F = %.6g\n",
              static_cast<long long>(x.rows()),
              static_cast<long long>(x.cols()),
              la::frobenius_norm(x.view()));

  // 4. Brute-force timing of every schedule under the paper's protocol.
  model::MeasuredMachineConfig cfg;
  cfg.protocol.repetitions = 3;
  model::MeasuredMachine machine(cfg);
  std::printf("\ntiming every schedule (median of %d, cold cache):\n",
              cfg.protocol.repetitions);
  double best_time = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    const double t = machine.time_algorithm(algorithms[i]);
    std::printf("  %zu: %.4f s%s\n", i + 1, t,
                i == cheapest.front() ? "   <- FLOP-minimal" : "");
    if (i == 0 || t < best_time) {
      best_time = t;
      best_idx = i;
    }
  }
  const bool anomaly = best_idx != cheapest.front();
  std::printf("\nfastest schedule: #%zu -> FLOP count %s a fastest "
              "algorithm on this machine%s\n",
              best_idx + 1, anomaly ? "did NOT select" : "selected",
              anomaly ? " (an anomaly, in the paper's terms)" : "");
  return 0;
}
