// Quickstart: define an expression in the DSL, enumerate its mathematically-
// equivalent algorithms, pick the FLOP-minimal one the way Linnea/Armadillo/
// Julia would, execute it on the BLAS substrate — then time every algorithm
// to see whether the FLOP-count discriminant actually picked a fastest
// algorithm on this machine.
//
// Build & run:  ./examples/quickstart [d0 d1 d2 d3 d4]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "chain/chain.hpp"
#include "expr/expr.hpp"
#include "expr/registry.hpp"
#include "la/norms.hpp"
#include "model/cost_model.hpp"
#include "model/executor.hpp"
#include "model/measured_machine.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace lamb;
  using expr::Expr;

  // Default instance: a thin-fat-thin chain where parenthesisation matters.
  expr::Instance dims = {600, 40, 500, 30, 400};
  if (argc == 6) {
    for (int i = 0; i < 5; ++i) {
      dims[static_cast<std::size_t>(i)] =
          static_cast<int>(std::atol(argv[i + 1]));
    }
  }
  std::printf("chain instance (d0..d4) = (%d, %d, %d, %d, %d)\n\n", dims[0],
              dims[1], dims[2], dims[3], dims[4]);

  // 1. Define X := A*B*C*D in the expression DSL. Operand shapes are
  //    symbolic: they index the instance tuple (d0..d4).
  const expr::ExprPtr a = Expr::operand("A", 0, 1);
  const expr::ExprPtr b = Expr::operand("B", 1, 2);
  const expr::ExprPtr c = Expr::operand("C", 2, 3);
  const expr::ExprPtr d = Expr::operand("D", 3, 4);
  const expr::ExprPtr chain_expr = a * b * c * d;
  std::printf("expression: X := %s\n", chain_expr->to_string().c_str());

  // 2. Enumerate every multiplication schedule generically. (The same
  //    family is registered as "chain4": expr::make_family("chain4") gives
  //    an equivalent ExpressionFamily; `registry().names()` lists all.)
  const auto algorithms =
      expr::enumerate_algorithms(chain_expr, dims, "chain4-alg");
  std::printf("%zu mathematically equivalent algorithms:\n",
              algorithms.size());
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    std::printf("  %zu: %-34s %12s FLOPs\n", i + 1,
                algorithms[i].signature().c_str(),
                support::format_count(algorithms[i].flops()).c_str());
  }

  // 3. The FLOP-count discriminant (what Linnea/Armadillo/Julia use), and
  //    the classic dynamic program that finds the same minimum in O(n^3).
  model::FlopCostModel flop_cost;
  const auto cheapest = model::select_best(algorithms, flop_cost);
  const chain::ChainDims cdims(dims.begin(), dims.end());
  const auto dp = chain::chain_dp(cdims);
  std::printf("\nFLOP-minimal schedule: #%zu (%s), %s FLOPs\n",
              cheapest.front() + 1,
              algorithms[cheapest.front()].signature().c_str(),
              support::format_count(dp.min_flops).c_str());
  std::printf("DP parenthesisation:   %s\n", dp.parenthesisation(4).c_str());

  // 4. Execute the selected algorithm on real matrices and validate. The
  //    registry family provides matching external operands.
  support::Rng rng(42);
  const auto family = expr::make_family("chain4");
  const auto externals = family->make_externals(dims, rng);
  const la::Matrix x = model::execute(algorithms[cheapest.front()], externals);
  std::printf("\nexecuted on the lamb::blas substrate: X is %lld x %lld, "
              "||X||_F = %.6g\n",
              static_cast<long long>(x.rows()),
              static_cast<long long>(x.cols()),
              la::frobenius_norm(x.view()));

  // 5. Brute-force timing of every schedule under the paper's protocol.
  model::MeasuredMachineConfig cfg;
  cfg.protocol.repetitions = 3;
  model::MeasuredMachine machine(cfg);
  std::printf("\ntiming every schedule (median of %d, cold cache):\n",
              cfg.protocol.repetitions);
  double best_time = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    const double t = machine.time_algorithm(algorithms[i]);
    std::printf("  %zu: %.4f s%s\n", i + 1, t,
                i == cheapest.front() ? "   <- FLOP-minimal" : "");
    if (i == 0 || t < best_time) {
      best_time = t;
      best_idx = i;
    }
  }
  const bool anomaly = best_idx != cheapest.front();
  std::printf("\nfastest schedule: #%zu -> FLOP count %s a fastest "
              "algorithm on this machine%s\n",
              best_idx + 1, anomaly ? "did NOT select" : "selected",
              anomaly ? " (an anomaly, in the paper's terms)" : "");

  // 6. Where to go next: every registered family runs the same experiments
  //    through anomaly::ExperimentDriver (see bench/ and README.md).
  std::printf("\nregistered families:\n%s\n",
              expr::registry().to_string().c_str());
  return 0;
}
