// Kernel profiles on the host: benchmark the lamb::blas substrate's GEMM,
// SYRK and SYMM under the paper's protocol and print a Figure-1-style
// efficiency table for this machine (efficiency = rate / best observed
// GEMM rate).
//
// Usage: ./examples/kernel_profiles [--max-size=320] [--repetitions=3]
#include <cstdio>
#include <vector>

#include "model/kernel_call.hpp"
#include "model/measured_machine.hpp"
#include "perf/machine_info.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace lamb;
  const support::Cli cli(argc, argv);
  const long long max_size = cli.get_int("max-size", 320);

  const perf::MachineInfo info = perf::query_machine_info();
  std::printf("host: %s\n", info.to_string().c_str());

  model::MeasuredMachineConfig cfg;
  cfg.protocol.repetitions = static_cast<int>(cli.get_int("repetitions", 3));
  model::MeasuredMachine machine(cfg);
  const double peak = machine.peak_flops();
  std::printf("empirical peak (best GEMM rate): %.2f GFLOP/s\n\n",
              peak / 1e9);

  support::Table table({"size", "gemm GF/s", "gemm eff", "syrk GF/s",
                        "syrk eff", "symm GF/s", "symm eff"});
  for (long long s = 48; s <= max_size; s *= 2) {
    const auto n = static_cast<la::index_t>(s);
    const model::KernelCall calls[3] = {model::make_gemm(n, n, n),
                                        model::make_syrk(n, n),
                                        model::make_symm(n, n)};
    std::vector<std::string> row = {support::strf("%lld", s)};
    for (const auto& call : calls) {
      const double t = machine.time_call_isolated(call);
      const double rate = static_cast<double>(call.flops()) / t;
      row.push_back(support::strf("%.2f", rate / 1e9));
      row.push_back(support::format_percent(rate / peak, 0));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nLike the paper's Figure 1: efficiency ramps up with size, "
              "and SYRK/SYMM trail GEMM at small sizes.\n");
  return 0;
}
