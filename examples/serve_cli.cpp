// serve_cli: drive the SelectionService from the command line.
//
// Subcommands (first positional argument):
//   build   build one atlas slice and persist it
//             serve_cli build --family=aatb --base=150,260,549 --dim=0
//                       --atlas-dir=atlases [--lo --hi --step --threshold]
//   warm    batch-build the slices a query list needs, checkpoint them
//             serve_cli warm --family=aatb --atlas-dir=atlases
//                       --queries=queries.csv
//   query   answer queries from a CSV file or stdin (one instance per line,
//           comma-separated sizes; '#' starts a comment)
//             echo 300,260,549 | serve_cli query --family=aatb
//                       --atlas-dir=atlases
//   batch   answer the query list through query_batch and report its
//           throughput against repeated single query() calls on the same
//           warm service
//             serve_cli batch --family=aatb --queries=queries.csv --repeat=5
//   async   submit every query through query_async (deduplicating
//           background builds), then collect the futures in input order
//             echo 300,260,549 | serve_cli async --family=aatb
//   bench   time uncached classification vs warm-cache service queries
//             serve_cli bench --family=aatb --queries-n=2000
//   serve   HTTP front-end: warm from --atlas-dir (and --queries, if given),
//           then listen until SIGINT/SIGTERM (graceful drain, checkpoint on
//           exit when an atlas dir is set)
//             serve_cli serve --port=8080 --atlas-dir=atlases
//                       [--bind=127.0.0.1 --http-threads=2 --loops=N]
//                       [--trace=off|counters|sampled|full
//                        --trace-sample=64 --slow-ms=10]
//                       [--drift-refresh --drift-interval=30
//                        --drift-threshold=0.15 --drift-probes=12]
//           --drift-refresh runs a background DriftMonitor: it re-measures a
//           sampled probe grid on a cadence and rebuilds every atlas slice
//           through the copy-on-write refresh path when the machine's
//           timings move; progress is visible as lamb_drift_* on /metrics.
//           With --atlas-dir the drift baseline persists next to the slices.
//           --loops=N shards the front-end over N independent epoll loops
//           (per-loop SO_REUSEPORT listeners when the kernel allows, else a
//           round-robin acceptor); /metrics exports per-loop lamb_net_loop_*
//           series next to the aggregated lamb_http_* families.
//           --trace controls the obs::Tracer (default sampled): counters
//           keeps only the always-on lamb_stage_seconds histograms, sampled
//           adds full span capture for 1-in---trace-sample requests, full
//           samples everything. Spans surface on GET /debug/trace (Chrome
//           trace-event JSON), requests slower than --slow-ms on
//           GET /debug/slow; POST /debug/sample_rate retunes sampling live.
//   trace   fetch /debug/trace (or /debug/slow with --slow) from a running
//           server and print or save it
//             serve_cli trace --port=8080 [--host=127.0.0.1] [--slow]
//                       [--out=trace.json]
//   fsck    verify every checkpoint in --atlas-dir (framed *.atlas records
//           and the drift baseline) without loading them into a service;
//           --repair quarantines corrupt files (renamed to *.corrupt and
//           journaled, see store/serial.hpp) and removes stale *.tmp
//           staging files. Exits 1 when unrepaired corruption remains.
//             serve_cli fsck --atlas-dir=atlases [--repair]
//   simulate  replay a trace spec (sim/trace.hpp grammar) against a fresh
//           service, in-process or through a loopback HTTP server, and
//           report per-phase qps, latency percentiles and the answer-source
//           mix. Deterministic: same --trace + --seed => same stream, and
//           (in-process, or --http with --connections=1) the same source
//           mix — the CI smoke diffs two runs.
//             serve_cli simulate [--trace=spec.toml] [--seed=1]
//                       [--http --connections=1 --loops=N] [--warm] [--pace=1]
//                       [--json=out.json] [--max-p99-ms=N] [--print-trace]
//                       [--stage-breakdown]
//           --stage-breakdown additionally attributes serving time to the
//           pipeline stages (parse/route/lru/atlas/build/kernel) per phase,
//           via the tracer's always-on counters tier.
//   profile replay a trace spec in-process with FULL span sampling and
//           print the per-stage wall-time x PMU attribution table: stage
//           executions, total wall time and share, plus cycles,
//           instructions, IPC and LLC miss rate per stage when the PMU is
//           available (all hardware columns degrade to "-" when it is not
//           — see lamb_pmu_available on /metrics).
//             serve_cli profile [--trace=spec.toml] [--seed=1] [--warm]
//                       [--sample=1] [--json=out.json]
//
// Common flags: --family=NAME (registry name), --dim=N (slice dimension,
// default 0), --exact (bypass the atlas), --atlas-dir=DIR (persistent store;
// omitted = in-memory only), --real (measured machine instead of simulated),
// --lo/--hi/--step/--threshold (atlas scan geometry), --threads=N.
//
// Robustness flags (serve/simulate degrade by default; see README "Failure
// model"): --degrade=0|1 (fallback answers instead of exceptions when a
// build fails), --breaker-threshold=N and --breaker-backoff-ms=MS (per-slice
// circuit breaker), --max-build-queue=N (bounded async build queue),
// --build-deadline-ms=MS (cap a query's wait on an in-flight build),
// --deadline-ms=MS (HTTP 504 ceiling per request), --max-in-flight=N
// (admission control: shed 503 + Retry-After past N concurrent requests),
// --idle-timeout-s=S (reap idle keep-alive connections). Fault injection for
// drills: LAMB_FAULT="site=spec,..." (support/fault.hpp grammar), surfaced
// as lamb_fault_injected_total on /metrics.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <span>
#include <sstream>

#include <thread>

#include "anomaly/classifier.hpp"
#include "model/measured_machine.hpp"
#include "model/simulated_machine.hpp"
#include "net/client.hpp"
#include "net/routes.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/drift.hpp"
#include "serve/selection_service.hpp"
#include "sim/generator.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "store/atlas_io.hpp"
#include "store/profile_io.hpp"
#include "store/serial.hpp"
#include "support/cli.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

#include <filesystem>

namespace {

using namespace lamb;

serve::ServiceConfig service_config(const support::Cli& cli, bool real,
                                    bool serving) {
  serve::ServiceConfig cfg;
  cfg.atlas.lo = static_cast<int>(cli.get_int("lo", 20));
  cfg.atlas.hi = static_cast<int>(cli.get_int("hi", real ? 300 : 1200));
  cfg.atlas.coarse_step = static_cast<int>(cli.get_int("step", 20));
  cfg.atlas.time_score_threshold = cli.get_double("threshold", 0.05);
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  // Robustness posture. Serving paths (serve, simulate) degrade to the
  // flop-minimal fallback when a build fails — a wrong-but-safe answer
  // beats a 500; the one-shot CLI commands keep throwing so failures are
  // loud at the terminal. --degrade overrides either default.
  cfg.degrade_on_failure = cli.get_bool("degrade", serving);
  cfg.breaker_threshold =
      static_cast<int>(cli.get_int("breaker-threshold", 3));
  cfg.breaker_backoff_initial_s =
      cli.get_double("breaker-backoff-ms", 500.0) * 1e-3;
  cfg.build_deadline_s = cli.get_double("build-deadline-ms", 0.0) * 1e-3;
  cfg.max_build_queue =
      static_cast<std::size_t>(cli.get_int("max-build-queue", 0));
  return cfg;
}

std::unique_ptr<model::MachineModel> make_machine(const support::Cli& cli) {
  if (cli.get_bool("real", false)) {
    model::MeasuredMachineConfig cfg;
    cfg.protocol.repetitions = static_cast<int>(cli.get_int("repetitions", 5));
    return std::make_unique<model::MeasuredMachine>(cfg);
  }
  model::SimulatedMachineConfig cfg;
  cfg.noise_seed = cli.get_seed("noise-seed", 0xC0FFEE);
  return std::make_unique<model::SimulatedMachine>(cfg);
}

expr::Instance parse_instance(const std::string& line) {
  expr::Instance dims;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) {
    try {
      std::size_t consumed = 0;
      const int value = std::stoi(field, &consumed);
      if (field.find_first_not_of(" \t\r", consumed) != std::string::npos) {
        throw std::invalid_argument("trailing garbage");
      }
      dims.push_back(value);
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad size field '%s' in query line '%s'\n",
                   field.c_str(), line.c_str());
      std::exit(1);
    }
  }
  return dims;
}

/// Queries from --queries=PATH ("-" or absent = stdin); blank lines and
/// '#' comments are skipped.
std::vector<serve::Query> read_queries(const support::Cli& cli,
                                       const std::string& family, int dim,
                                       bool exact) {
  const std::string path = cli.get_string("queries", "-");
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "cannot open queries file: %s\n", path.c_str());
      std::exit(1);
    }
    in = &file;
  }
  std::vector<serve::Query> queries;
  std::string line;
  while (std::getline(*in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    queries.push_back(serve::Query{family, parse_instance(line), dim, exact});
  }
  return queries;
}

void print_stats(const serve::SelectionService& service) {
  const serve::ServiceStats s = service.stats();
  std::printf("stats: cache %llu hits / %llu misses, %llu atlases built "
              "(+%llu loaded, %llu skipped, %lld scan samples), "
              "%llu measured queries\n",
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses),
              static_cast<unsigned long long>(s.atlases_built),
              static_cast<unsigned long long>(s.atlases_loaded),
              static_cast<unsigned long long>(s.atlases_skipped),
              s.atlas_samples,
              static_cast<unsigned long long>(s.measured_queries));
  std::printf("stats: answers by source cache=%llu atlas=%llu "
              "measured=%llu; %llu batch calls (%llu queries), "
              "%llu async calls\n",
              static_cast<unsigned long long>(s.cache_answers),
              static_cast<unsigned long long>(s.atlas_answers),
              static_cast<unsigned long long>(s.measured_queries),
              static_cast<unsigned long long>(s.batch_calls),
              static_cast<unsigned long long>(s.batch_queries),
              static_cast<unsigned long long>(s.async_calls));
}

void print_recommendations(const std::vector<serve::Query>& queries,
                           const std::vector<serve::Recommendation>& recs) {
  std::printf("instance,algorithm,flops_reliable,time_score,source\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    std::string inst;
    for (std::size_t d = 0; d < queries[i].dims.size(); ++d) {
      inst += support::strf("%s%d", d > 0 ? "x" : "", queries[i].dims[d]);
    }
    std::printf("%s,%zu,%d,%.4f,%s\n", inst.c_str(), recs[i].algorithm + 1,
                recs[i].flops_reliable ? 1 : 0, recs[i].time_score,
                std::string(serve::to_string(recs[i].source)).c_str());
  }
}

int cmd_build(const support::Cli& cli, serve::SelectionService& service) {
  const std::string family = cli.get_string("family", "aatb");
  const expr::Instance base =
      parse_instance(cli.get_string("base", "150,260,549"));
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  const serve::Query probe{family, base, dim, false};
  service.warm({probe});
  const anomaly::RegionAtlas* atlas = service.atlas_for(probe);
  std::printf("%s", atlas->to_string().c_str());
  print_stats(service);
  return 0;
}

int cmd_warm(const support::Cli& cli, serve::SelectionService& service) {
  const std::string family = cli.get_string("family", "aatb");
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  const auto queries = read_queries(cli, family, dim, false);
  const std::size_t built = service.warm(queries);
  std::printf("%zu queries -> %zu atlas slices built (%zu total)\n",
              queries.size(), built, service.atlas_count());
  print_stats(service);
  return 0;
}

int cmd_query(const support::Cli& cli, serve::SelectionService& service) {
  const std::string family = cli.get_string("family", "aatb");
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  const bool exact = cli.get_bool("exact", false);
  const auto queries = read_queries(cli, family, dim, exact);
  const auto recs = service.query_batch(queries);
  print_recommendations(queries, recs);
  print_stats(service);
  return 0;
}

int cmd_batch(const support::Cli& cli, serve::SelectionService& service) {
  const std::string family = cli.get_string("family", "aatb");
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  const int repeat = static_cast<int>(cli.get_int("repeat", 5));
  const auto queries = read_queries(cli, family, dim, false);
  if (queries.empty()) {
    std::fprintf(stderr, "no queries\n");
    return 1;
  }

  // Cold pass builds every needed slice (grouped, deduplicated, parallel
  // when the machine's timing allows), then the timed passes are warm.
  using clock = std::chrono::steady_clock;
  const auto t_cold = clock::now();
  auto recs = service.query_batch(queries);
  const double cold =
      std::chrono::duration<double>(clock::now() - t_cold).count();

  for (const serve::Query& q : queries) {
    service.query(q);  // populate the LRU for the single-query baseline
  }
  const auto t_single = clock::now();
  for (int r = 0; r < repeat; ++r) {
    for (const serve::Query& q : queries) {
      service.query(q);
    }
  }
  const double single =
      std::chrono::duration<double>(clock::now() - t_single).count();

  const auto t_batch = clock::now();
  for (int r = 0; r < repeat; ++r) {
    recs = service.query_batch(queries);
  }
  const double batch =
      std::chrono::duration<double>(clock::now() - t_batch).count();

  print_recommendations(queries, recs);
  const double per_query = static_cast<double>(queries.size()) * repeat;
  std::printf("cold batch %.3f s; warm: single query %.0f ns/q, "
              "query_batch %.0f ns/q -> %.1fx\n",
              cold, 1e9 * single / per_query, 1e9 * batch / per_query,
              single / batch);
  print_stats(service);
  return 0;
}

int cmd_async(const support::Cli& cli, serve::SelectionService& service) {
  const std::string family = cli.get_string("family", "aatb");
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  const bool exact = cli.get_bool("exact", false);
  const auto queries = read_queries(cli, family, dim, exact);

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::vector<std::future<serve::Recommendation>> futures;
  futures.reserve(queries.size());
  for (const serve::Query& q : queries) {
    futures.push_back(service.query_async(q));
  }
  const double submit =
      std::chrono::duration<double>(clock::now() - t0).count();

  std::vector<serve::Recommendation> recs;
  recs.reserve(futures.size());
  for (auto& fut : futures) {
    recs.push_back(fut.get());
  }
  const double total =
      std::chrono::duration<double>(clock::now() - t0).count();

  print_recommendations(queries, recs);
  std::printf("%zu async queries: submitted in %.6f s, all resolved after "
              "%.3f s\n",
              queries.size(), submit, total);
  print_stats(service);
  return 0;
}

int cmd_bench(const support::Cli& cli, serve::SelectionService& service,
              model::MachineModel& machine) {
  const std::string family_name = cli.get_string("family", "aatb");
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  const int n = static_cast<int>(cli.get_int("queries-n", 2000));
  const auto& cfg = service.config().atlas;

  // Random queries along a handful of slices, so warm() builds a few atlases
  // and the query loop then runs entirely from atlas + cache lookups.
  const auto family = expr::make_family(family_name);
  support::Rng rng(cli.get_seed("seed", 42));
  std::vector<serve::Query> queries;
  queries.reserve(static_cast<std::size_t>(n));
  const int bases = 4;
  std::vector<expr::Instance> base_pool;
  for (int b = 0; b < bases; ++b) {
    expr::Instance base;
    for (int d = 0; d < family->dimension_count(); ++d) {
      base.push_back(rng.uniform_int(cfg.lo, cfg.hi));
    }
    base_pool.push_back(base);
  }
  for (int i = 0; i < n; ++i) {
    expr::Instance dims = base_pool[static_cast<std::size_t>(
        rng.uniform_int(0, bases - 1))];
    dims[static_cast<std::size_t>(dim)] = rng.uniform_int(cfg.lo, cfg.hi);
    queries.push_back(serve::Query{family_name, dims, dim, false});
  }

  using clock = std::chrono::steady_clock;

  // Reference: uncached classification of every query.
  const auto t0 = clock::now();
  for (const serve::Query& q : queries) {
    anomaly::classify_instance(*family, machine, q.dims,
                               cfg.time_score_threshold);
  }
  const double uncached =
      std::chrono::duration<double>(clock::now() - t0).count();

  service.warm(queries);
  service.query_batch(queries);  // populate the recommendation cache

  const auto t1 = clock::now();
  for (const serve::Query& q : queries) {
    service.query(q);
  }
  const double warm = std::chrono::duration<double>(clock::now() - t1).count();

  std::printf("%d queries: uncached classification %.3f s (%.1f us/q), "
              "warm service %.6f s (%.2f us/q) -> %.0fx\n",
              n, uncached, 1e6 * uncached / n, warm, 1e6 * warm / n,
              uncached / warm);
  print_stats(service);
  return 0;
}

/// --trace=off|counters|sampled|full (+ --trace-sample, --slow-ms) ->
/// tracer configuration. Returns the mode string for the banner.
std::string configure_tracing(const support::Cli& cli) {
  const std::string mode = cli.get_string("trace", "sampled");
  obs::TracerConfig tc;
  if (mode == "off") {
    tc.enabled = false;
  } else if (mode == "counters") {
    tc.enabled = true;
    tc.sample_every = 0;  // histograms only, no span capture
  } else if (mode == "sampled") {
    tc.enabled = true;
    tc.sample_every = static_cast<std::uint32_t>(
        cli.get_int("trace-sample", 64));
  } else if (mode == "full") {
    tc.enabled = true;
    tc.sample_every = 1;
  } else {
    std::fprintf(stderr,
                 "bad --trace=%s (want off|counters|sampled|full)\n",
                 mode.c_str());
    std::exit(1);
  }
  tc.slow_threshold_ns = static_cast<std::uint64_t>(
      cli.get_double("slow-ms", 10.0) * 1e6);
  obs::tracer().configure(tc);
  return mode;
}

/// stop() is an atomic store plus one eventfd write: async-signal-safe.
std::atomic<net::Server*> g_serving{nullptr};

void handle_stop_signal(int) {
  if (net::Server* server = g_serving.load()) {
    server->stop();
  }
}

int cmd_serve(const support::Cli& cli, serve::SelectionService& service,
              model::MachineModel& machine) {
  const std::string family = cli.get_string("family", "aatb");
  const int dim = static_cast<int>(cli.get_int("dim", 0));
  if (cli.has("queries")) {
    const auto queries = read_queries(cli, family, dim, false);
    const std::size_t built = service.warm(queries);
    std::printf("pre-warmed %zu atlas slices from %zu queries\n", built,
                queries.size());
  }

  const std::string trace_mode = configure_tracing(cli);

  net::SelectionRoutesConfig routes_cfg;
  routes_cfg.worker_threads =
      static_cast<std::size_t>(cli.get_int("http-threads", 2));
  routes_cfg.deadline_ms = cli.get_double("deadline-ms", 0.0);
  net::SelectionRoutes routes(service, routes_cfg);

  std::unique_ptr<serve::DriftMonitor> drift;
  if (cli.get_bool("drift-refresh", false)) {
    serve::DriftConfig drift_cfg;
    drift_cfg.check_interval_seconds =
        cli.get_double("drift-interval", drift_cfg.check_interval_seconds);
    drift_cfg.threshold =
        cli.get_double("drift-threshold", drift_cfg.threshold);
    drift_cfg.probes = static_cast<std::size_t>(
        cli.get_int("drift-probes", static_cast<long long>(drift_cfg.probes)));
    const std::string atlas_dir = cli.get_string("atlas-dir", "");
    if (!atlas_dir.empty()) {
      drift_cfg.baseline_path = atlas_dir + "/drift_baseline.lamb";
    }
    drift = std::make_unique<serve::DriftMonitor>(service, machine, drift_cfg);
    routes.attach_drift(drift.get());
    drift->start();
    std::printf("drift refresh: every %.1f s, %zu probes, threshold %.2f%s\n",
                drift_cfg.check_interval_seconds, drift_cfg.probes,
                drift_cfg.threshold,
                drift_cfg.baseline_path.empty() ? ""
                                                : ", persisted baseline");
  }

  net::ServerConfig server_cfg;
  server_cfg.bind_address = cli.get_string("bind", "127.0.0.1");
  server_cfg.port = static_cast<std::uint16_t>(cli.get_int("port", 8080));
  server_cfg.loops = static_cast<std::size_t>(cli.get_int("loops", 1));
  server_cfg.max_in_flight =
      static_cast<std::size_t>(cli.get_int("max-in-flight", 0));
  server_cfg.idle_timeout_s = cli.get_double("idle-timeout-s", 0.0);
  // Backpressure from the build tier: when the async build queue backs up
  // past the watermark, shed new requests at admission instead of letting
  // them pile onto a queue that is already losing ground.
  const auto shed_watermark =
      static_cast<std::size_t>(cli.get_int("shed-queue-depth", 0));
  if (shed_watermark > 0) {
    server_cfg.shed_hook = [&service, shed_watermark] {
      return service.async_queue_depth() >= shed_watermark;
    };
  }
  net::Server server(routes.router(), server_cfg);
  routes.attach_server(&server);

  g_serving.store(&server);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::printf("serving on http://%s:%u (POST /v1/query, POST /v1/batch, "
              "GET /healthz, GET /metrics, GET /debug/trace, "
              "GET /debug/slow, POST /debug/sample_rate); "
              "%zu event loop%s (%s); SIGINT/SIGTERM drains\n",
              server_cfg.bind_address.c_str(), server.port(), server.loops(),
              server.loops() == 1 ? "" : "s",
              server.loops() == 1          ? "single listener"
              : server.sharded_listeners() ? "SO_REUSEPORT sharded"
                                           : "acceptor handoff");
  if (trace_mode != "off") {
    const obs::TracerConfig tc = obs::tracer().config();
    const std::string capture =
        tc.sample_every == 0 ? "no span capture"
                             : support::strf("1-in-%u span capture",
                                             tc.sample_every);
    std::printf("tracing %s: %s, slow log at %.1f ms, %s timestamps\n",
                trace_mode.c_str(), capture.c_str(),
                static_cast<double>(tc.slow_threshold_ns) * 1e-6,
                obs::using_tsc() ? "tsc" : "steady_clock");
  }
  std::fflush(stdout);
  server.run();
  g_serving.store(nullptr);
  if (drift != nullptr) {
    drift->stop();
    const serve::DriftStats d = drift->stats();
    std::printf("drift: %llu checks, %llu drift events, %llu refresh rounds "
                "(%llu slices), last score %.4f\n",
                static_cast<unsigned long long>(d.checks),
                static_cast<unsigned long long>(d.drift_detected),
                static_cast<unsigned long long>(d.refresh_rounds),
                static_cast<unsigned long long>(d.slices_refreshed),
                d.last_score);
  }

  const net::HttpStatsSnapshot h = server.stats();
  std::printf("drained: %llu connections, %llu requests, %llu bytes out, "
              "%llu shed, %llu idle-reaped\n",
              static_cast<unsigned long long>(h.connections_accepted),
              static_cast<unsigned long long>(h.requests_total),
              static_cast<unsigned long long>(h.bytes_written),
              static_cast<unsigned long long>(h.requests_shed),
              static_cast<unsigned long long>(h.idle_reaped));
  print_stats(service);
  return 0;
}

int cmd_trace(const support::Cli& cli) {
  const std::string host = cli.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 8080));
  const char* target = cli.get_bool("slow", false) ? "/debug/slow"
                                                   : "/debug/trace";
  net::Client client(host, port);
  const net::ResponseParser::Parsed response = client.request("GET", target);
  if (response.status != 200) {
    std::fprintf(stderr, "HTTP %d from %s\n%s", response.status, target,
                 response.body.c_str());
    return 1;
  }
  const std::string out_path = cli.get_string("out", "");
  if (out_path.empty()) {
    std::printf("%s", response.body.c_str());
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << response.body;
  std::printf("wrote %s (%zu bytes; open in chrome://tracing or Perfetto)\n",
              out_path.c_str(), response.body.size());
  return 0;
}

/// Checkpoint integrity audit. Walks --atlas-dir and re-parses every framed
/// record exactly the way warm_from_store would, but without a service or
/// machine model — so it runs before a deploy, on a snapshot, or against a
/// dir a crashed server left behind. Three findings:
///   corrupt  *.atlas / drift baseline that fails its frame checksum
///            (--repair quarantines: rename to *.corrupt + journal entry)
///   stale    *.tmp staging files from an interrupted atomic write
///            (--repair removes them; the rename never happened, so they
///            shadow nothing)
///   ok       records that parse clean
/// Exits 1 while unrepaired corruption remains, 0 otherwise.
int cmd_fsck(const support::Cli& cli) {
  namespace fs = std::filesystem;
  const std::string dir = cli.get_string("atlas-dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "fsck: --atlas-dir is required\n");
    return 1;
  }
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "fsck: %s is not a directory\n", dir.c_str());
    return 1;
  }
  const bool repair = cli.get_bool("repair", false);

  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      entries.push_back(entry.path());
    }
  }
  std::sort(entries.begin(), entries.end());

  std::size_t ok = 0;
  std::size_t corrupt = 0;
  std::size_t stale = 0;
  std::size_t repaired = 0;
  std::size_t unrepaired = 0;
  for (const fs::path& path : entries) {
    const std::string name = path.filename().string();
    if (path.extension() == ".tmp") {
      ++stale;
      if (repair) {
        fs::remove(path, ec);
        if (!ec) {
          ++repaired;
          std::printf("fsck: removed stale staging file %s\n", name.c_str());
        }
      } else {
        std::printf("fsck: stale staging file %s (interrupted write)\n",
                    name.c_str());
      }
      continue;
    }
    std::string error;
    if (path.extension() == ".atlas") {
      try {
        (void)store::load_atlas(path.string());
      } catch (const store::SerialError& e) {
        error = e.what();
      }
    } else if (name == "drift_baseline.lamb") {
      try {
        (void)store::load_drift_baseline(path.string());
      } catch (const store::SerialError& e) {
        error = e.what();
      }
    } else {
      continue;  // quarantine journal, *.corrupt, unrelated files
    }
    if (error.empty()) {
      ++ok;
      continue;
    }
    ++corrupt;
    ++unrepaired;
    std::printf("fsck: CORRUPT %s: %s\n", name.c_str(), error.c_str());
    if (repair) {
      try {
        store::quarantine_file(path.string(), error);
        ++repaired;
        --unrepaired;
        std::printf("fsck: quarantined %s\n", name.c_str());
      } catch (const store::SerialError& e) {
        std::fprintf(stderr, "fsck: cannot quarantine %s: %s\n", name.c_str(),
                     e.what());
      }
    }
  }

  std::printf("fsck %s: %zu ok, %zu corrupt, %zu stale%s\n", dir.c_str(), ok,
              corrupt, stale,
              repair ? support::strf(", %zu repaired", repaired).c_str()
                     : "");
  return unrepaired > 0 ? 1 : 0;
}

int cmd_simulate(const support::Cli& cli, serve::SelectionService& service) {
  const sim::TraceSpec spec = cli.has("trace")
                                  ? sim::load_trace(cli.get_string("trace", ""))
                                  : sim::default_trace();
  if (cli.get_bool("print-trace", false)) {
    std::printf("%s", spec.to_string().c_str());
    return 0;
  }

  const std::uint64_t seed = cli.get_seed("seed", 1);
  sim::TraceGenerator generator(spec, seed);
  const std::vector<sim::Request> requests = generator.generate();

  sim::ReplayConfig replay_cfg;
  replay_cfg.connections =
      static_cast<std::size_t>(cli.get_int("connections", 1));
  replay_cfg.warm = cli.get_bool("warm", false);
  replay_cfg.pace = cli.get_double("pace", 0.0);
  replay_cfg.stage_breakdown = cli.get_bool("stage-breakdown", false);

  std::printf("%s", spec.to_string().c_str());
  std::printf("seed %llu -> %zu requests\n",
              static_cast<unsigned long long>(seed), requests.size());
  std::fflush(stdout);

  sim::SimReport report;
  if (cli.get_bool("http", false)) {
    // Loopback replay through the full HTTP tier: the service owner warms
    // directly (replay_http cannot), then a background thread runs the
    // server on an ephemeral port while this thread drives the clients.
    if (replay_cfg.warm) {
      for (const sim::Request& req : requests) {
        service.warm(std::span<const serve::Query>(req.queries));
      }
    }
    net::SelectionRoutesConfig routes_cfg;
    routes_cfg.worker_threads =
        static_cast<std::size_t>(cli.get_int("http-threads", 2));
    routes_cfg.deadline_ms = cli.get_double("deadline-ms", 0.0);
    net::SelectionRoutes routes(service, routes_cfg);
    net::ServerConfig server_cfg;
    server_cfg.bind_address = "127.0.0.1";
    server_cfg.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
    server_cfg.loops = static_cast<std::size_t>(cli.get_int("loops", 1));
    server_cfg.max_in_flight =
        static_cast<std::size_t>(cli.get_int("max-in-flight", 0));
    server_cfg.idle_timeout_s = cli.get_double("idle-timeout-s", 0.0);
    net::Server server(routes.router(), server_cfg);
    routes.attach_server(&server);
    std::thread loop([&server] { server.run(); });
    try {
      report = sim::replay_http("127.0.0.1", server.port(), requests, spec,
                                replay_cfg);
    } catch (...) {
      server.stop();
      loop.join();
      throw;
    }
    server.stop();
    loop.join();
  } else {
    report = sim::replay_in_process(service, requests, spec, replay_cfg);
  }

  std::printf("%s", report.to_string().c_str());
  std::printf("source mix:\n%s", report.source_mix().c_str());
  print_stats(service);

  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << report.to_json();
    std::printf("wrote %s\n", path.c_str());
  }

  const double max_p99_ms = cli.get_double("max-p99-ms", 0.0);
  if (max_p99_ms > 0.0) {
    for (const sim::PhaseStats& p : report.phases) {
      if (p.p99_us > max_p99_ms * 1000.0) {
        std::fprintf(stderr,
                     "FAIL: phase %s p99 %.1f us exceeds ceiling %.1f us\n",
                     p.name.c_str(), p.p99_us, max_p99_ms * 1000.0);
        return 1;
      }
    }
    std::printf("p99 ceiling %.1f ms: ok\n", max_p99_ms);
  }

  // Per-phase error budget: each phase spec may allow a fraction of its
  // requests to come back non-200 (shed, deadline, hard error) — a chaos
  // trace expects some, a clean trace expects none. Checked for every
  // phase; in-process replay throws on failure instead, so the counters
  // are only non-zero over HTTP.
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const sim::PhaseStats& p = report.phases[i];
    const std::uint64_t failed = p.shed + p.deadline + p.errors;
    const double budget = spec.phases[i].error_budget;
    if (static_cast<double>(failed) >
        budget * static_cast<double>(p.requests)) {
      std::fprintf(stderr,
                   "FAIL: phase %s: %llu/%llu requests failed "
                   "(shed=%llu deadline=%llu errors=%llu), budget %.3f\n",
                   p.name.c_str(), static_cast<unsigned long long>(failed),
                   static_cast<unsigned long long>(p.requests),
                   static_cast<unsigned long long>(p.shed),
                   static_cast<unsigned long long>(p.deadline),
                   static_cast<unsigned long long>(p.errors), budget);
      return 1;
    }
  }
  return 0;
}

int cmd_profile(const support::Cli& cli, serve::SelectionService& service) {
  const sim::TraceSpec spec = cli.has("trace")
                                  ? sim::load_trace(cli.get_string("trace", ""))
                                  : sim::default_trace();
  const std::uint64_t seed = cli.get_seed("seed", 1);
  sim::TraceGenerator generator(spec, seed);
  const std::vector<sim::Request> requests = generator.generate();

  // Full sampling: every request carries spans (and, when the hardware
  // allows, PMU deltas), into a ring big enough that the replay does not
  // overwrite itself. configure() drops prior tracer state, so the totals
  // read back below are exactly this replay's.
  obs::TracerConfig tc;
  tc.enabled = true;
  tc.sample_every =
      static_cast<std::uint32_t>(cli.get_int("sample", 1));
  tc.ring_capacity = 1 << 15;
  obs::tracer().configure(tc);

  sim::ReplayConfig replay_cfg;
  replay_cfg.warm = cli.get_bool("warm", false);
  replay_cfg.stage_breakdown = true;

  std::printf("pmu: %s\n", obs::pmu_status().c_str());
  std::printf("seed %llu -> %zu requests, 1-in-%u sampled\n",
              static_cast<unsigned long long>(seed), requests.size(),
              tc.sample_every);
  std::fflush(stdout);
  const sim::SimReport report =
      sim::replay_in_process(service, requests, spec, replay_cfg);

  const auto stages = obs::tracer().stage_snapshots();
  const auto pmu = obs::tracer().pmu_stage_totals();
  double total_seconds = 0.0;
  for (const auto& s : stages) {
    total_seconds += s.sum_seconds;
  }

  // Per-stage wall-time x PMU attribution. Stage times overlap (build
  // contains kernel, request contains everything HTTP-side), so the
  // percentage column shares out the SUM of stage times, not wall time.
  std::printf("\n%-8s %9s %11s %6s %12s %12s %6s %9s\n", "stage", "count",
              "wall_ms", "pct", "cycles", "instrs", "ipc", "llc_miss");
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    if (stages[s].count == 0) {
      continue;
    }
    std::printf("%-8s %9llu %11.3f %5.1f%%",
                std::string(obs::to_string(static_cast<obs::Stage>(s)))
                    .c_str(),
                static_cast<unsigned long long>(stages[s].count),
                1e3 * stages[s].sum_seconds,
                total_seconds > 0.0
                    ? 100.0 * stages[s].sum_seconds / total_seconds
                    : 0.0);
    if (pmu[s].cycles > 0) {
      std::printf(" %12llu %12llu %6.2f",
                  static_cast<unsigned long long>(pmu[s].cycles),
                  static_cast<unsigned long long>(pmu[s].instructions),
                  static_cast<double>(pmu[s].instructions) /
                      static_cast<double>(pmu[s].cycles));
      if (pmu[s].llc_loads > 0) {
        std::printf(" %8.2f%%", 100.0 *
                                    static_cast<double>(pmu[s].llc_misses) /
                                    static_cast<double>(pmu[s].llc_loads));
      } else {
        std::printf(" %9s", "-");
      }
    } else {
      std::printf(" %12s %12s %6s %9s", "-", "-", "-", "-");
    }
    std::printf("\n");
  }

  std::printf("\n%s", report.to_string().c_str());
  print_stats(service);

  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << report.to_json();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lamb;
  const support::Cli cli(argc, argv);
  // Fault injection arms from LAMB_FAULT before anything else runs, so the
  // store warm-up and every subcommand see the armed sites.
  support::fault_arm_from_env();
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s build|warm|query|batch|async|bench|serve|"
                 "simulate|profile|trace|fsck [flags]\n"
                 "(see the header comment of examples/serve_cli.cpp)\n",
                 cli.program().c_str());
    return 1;
  }
  const std::string cmd = cli.positional().front();
  if (cmd == "trace") {
    // Pure HTTP client; needs no service or machine model.
    return cmd_trace(cli);
  }
  if (cmd == "fsck") {
    // Pure on-disk audit; needs no service or machine model.
    return cmd_fsck(cli);
  }

  const bool serving = cmd == "serve" || cmd == "simulate";
  const auto machine = make_machine(cli);
  serve::SelectionService service(
      *machine, service_config(cli, cli.get_bool("real", false), serving));

  const std::string atlas_dir = cli.get_string("atlas-dir", "");
  std::unique_ptr<store::AtlasStore> atlas_store;
  if (!atlas_dir.empty()) {
    atlas_store = std::make_unique<store::AtlasStore>(atlas_dir);
    const std::size_t adopted = service.warm_from_store(*atlas_store);
    std::printf("atlas store %s: %zu slices adopted\n", atlas_dir.c_str(),
                adopted);
  }

  int rc = 1;
  if (cmd == "build") {
    rc = cmd_build(cli, service);
  } else if (cmd == "warm") {
    rc = cmd_warm(cli, service);
  } else if (cmd == "query") {
    rc = cmd_query(cli, service);
  } else if (cmd == "batch") {
    rc = cmd_batch(cli, service);
  } else if (cmd == "async") {
    rc = cmd_async(cli, service);
  } else if (cmd == "bench") {
    rc = cmd_bench(cli, service, *machine);
  } else if (cmd == "serve") {
    rc = cmd_serve(cli, service, *machine);
  } else if (cmd == "simulate") {
    rc = cmd_simulate(cli, service);
  } else if (cmd == "profile") {
    rc = cmd_profile(cli, service);
  } else {
    std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  }

  if (atlas_store != nullptr && rc == 0) {
    const std::size_t written = service.checkpoint(*atlas_store);
    std::printf("checkpointed %zu slices to %s\n", written, atlas_dir.c_str());
  }
  return rc;
}
