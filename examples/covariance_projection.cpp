// Domain scenario: covariance-weighted projection.
//
// In signal processing and statistics one repeatedly forms X := (A*A^T)*B —
// the sample covariance of a short-and-wide data matrix A (d0 channels x d1
// samples) applied to a block of probe vectors B (d0 x d2). This is exactly
// the paper's A*A^T*B expression: a library must choose among five
// BLAS-level algorithms (SYRK/SYMM vs GEMM variants, Sec. 3.2.2).
//
// This example walks the choice for a typical array-processing shape where
// the channel count d0 is small — the regime in which the paper shows the
// FLOP-count choice (SYRK-based) is systematically NOT the fastest
// (Fig. 11): few channels mean skinny SYRK/SYMM operands running at low
// efficiency.
#include <cstdio>

#include "anomaly/classifier.hpp"
#include "expr/aatb.hpp"
#include "expr/family.hpp"
#include "la/norms.hpp"
#include "model/cost_model.hpp"
#include "model/executor.hpp"
#include "model/simulated_machine.hpp"
#include "support/str.hpp"

int main() {
  using namespace lamb;

  // 96 sensor channels, 4096 samples, 512 probe vectors — but clamped to the
  // paper's search box so the numbers line up with the study.
  const expr::Instance dims = {96, 1024, 512};
  std::printf("covariance projection X := (A A') B with A %dx%d, B %dx%d\n\n",
              dims[0], dims[1], dims[0], dims[2]);

  expr::AatbFamily family;
  const auto algorithms = family.algorithms(dims);
  std::printf("the five algorithms and their FLOP counts:\n");
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    std::printf("  %zu: %-46s %12s FLOPs\n", i + 1,
                algorithms[i].signature().c_str(),
                support::format_count(algorithms[i].flops()).c_str());
  }

  // What a FLOP-count-based library would pick.
  model::FlopCostModel flop_cost;
  const auto cheapest = model::select_best(algorithms, flop_cost);
  std::printf("\nFLOP-count discriminant picks algorithm %zu (SYRK-based)\n",
              cheapest.front() + 1);

  // Classify the instance on the simulated Xeon-like machine.
  model::SimulatedMachine machine;
  const auto result = anomaly::classify_instance(family, machine, dims, 0.10);
  std::printf("\nmeasured on the simulated machine:\n");
  for (std::size_t i = 0; i < result.times.size(); ++i) {
    std::printf("  algorithm %zu: %8.3f ms   efficiency %.2f\n", i + 1,
                1e3 * result.times[i],
                static_cast<double>(result.flops[i]) /
                    (result.times[i] * machine.peak_flops()));
  }
  std::printf("\nfastest: algorithm %zu; cheapest: algorithm %zu\n",
              result.fastest.front() + 1, result.cheapest.front() + 1);
  if (result.anomaly) {
    std::printf("=> ANOMALY: the FLOP-minimal algorithm is %s slower than "
                "the fastest (which does %s more FLOPs).\n",
                support::format_percent(result.time_score).c_str(),
                support::format_percent(result.flop_score).c_str());
  } else {
    std::printf("=> FLOP count picked a fastest algorithm here.\n");
  }

  // The paper's proposed remedy: select using benchmarked kernel profiles.
  auto profiles = std::make_shared<const model::KernelProfileSet>(
      model::KernelProfileSet::build(machine));
  model::ProfileCostModel profile_cost(profiles);
  const auto by_profile = model::select_best(algorithms, profile_cost);
  std::printf("\nprofile-based discriminant picks algorithm %zu "
              "(measured rank: %s)\n",
              by_profile.front() + 1,
              by_profile.front() == result.fastest.front() ? "fastest"
                                                           : "not fastest");

  // Finally, execute the profile-picked algorithm on real data end-to-end.
  support::Rng rng(7);
  const auto externals = family.make_externals(dims, rng);
  const la::Matrix x =
      model::execute(algorithms[by_profile.front()], externals);
  std::printf("\nexecuted on the lamb::blas substrate: X is %lldx%lld, "
              "||X||_F = %.6g\n",
              static_cast<long long>(x.rows()),
              static_cast<long long>(x.cols()),
              la::frobenius_norm(x.view()));
  return 0;
}
