// Anomaly hunt: a compact version of the paper's Experiment 1 you can play
// with. Samples random instances of either expression, classifies each, and
// prints the anomalies it finds with their severity scores.
//
// Usage: ./examples/anomaly_hunt [--family=NAME] [--anomalies=N]
//                                [--hi=1200] [--seed=S] [--threshold=0.10]
// where NAME is any expr::registry() family (aatb, chain4, gram, aatbc, ...).
#include <cstdio>

#include "anomaly/driver.hpp"
#include "expr/registry.hpp"
#include "model/simulated_machine.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace lamb;
  const support::Cli cli(argc, argv);

  anomaly::RandomSearchConfig cfg;
  cfg.hi = static_cast<int>(cli.get_int("hi", 1200));
  cfg.target_anomalies = static_cast<int>(cli.get_int("anomalies", 12));
  cfg.max_samples = cli.get_int("max-samples", 500000);
  cfg.time_score_threshold = cli.get_double("threshold", 0.10);
  cfg.seed = cli.get_seed("seed", 2022);

  model::SimulatedMachine machine;
  anomaly::ExperimentDriver driver(cli.get_string("family", "aatb"), machine);
  const expr::ExpressionFamily& family = driver.family();
  std::printf("hunting %d anomalies of %s in [%d, %d]^%d "
              "(time-score threshold %s)...\n\n",
              cfg.target_anomalies, family.name().c_str(), cfg.lo, cfg.hi,
              family.dimension_count(),
              support::format_percent(cfg.time_score_threshold, 0).c_str());

  const auto result = driver.random_search(cfg);

  support::Table table({"instance", "cheapest", "fastest", "time score",
                        "FLOP score"});
  for (const auto& a : result.anomalies) {
    std::string inst = "(";
    for (std::size_t i = 0; i < a.dims.size(); ++i) {
      inst += support::strf("%d%s", a.dims[i],
                            i + 1 < a.dims.size() ? "," : ")");
    }
    std::string cheap;
    for (std::size_t c : a.cheapest) {
      cheap += support::strf("%zu ", c + 1);
    }
    std::string fast;
    for (std::size_t f : a.fastest) {
      fast += support::strf("%zu ", f + 1);
    }
    table.add_row({inst, cheap, fast,
                   support::format_percent(a.time_score),
                   support::format_percent(a.flop_score)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n%zu anomalies in %lld samples -> abundance %s\n",
              result.anomalies.size(), result.samples,
              support::format_percent(result.abundance(), 2).c_str());
  std::printf("(paper, threshold 10%%: aatb 9.7%%, chain 0.4%%)\n");
  return 0;
}
